//! Parameter-space substrate for the HiPerBOt auto-tuning framework.
//!
//! An HPC application exposes `n` tunable parameters `x_1 … x_n` (compiler
//! flags, runtime settings, application options, hardware knobs); a
//! *configuration* is a full assignment `x = [x_1, …, x_n]` (paper §III).
//! This crate models:
//!
//! - [`param`] — parameter definitions: categorical/ordinal discrete domains
//!   and bounded continuous domains.
//! - [`config`] — configurations, the values they hold, hashing/equality for
//!   deduplication (the Ranking strategy never re-selects a seen config).
//! - [`space`] — the [`ParameterSpace`]: construction, feasibility
//!   constraints (which is how the measured datasets of the paper end up
//!   with non-product cardinalities like Kripke's 1609), exhaustive
//!   enumeration in mixed-radix order, and Hamming-distance-1 neighborhoods
//!   (the edge relation of GEIST's configuration graph).
//! - [`sampling`] — uniform random configuration sampling, with and without
//!   replacement, used for initial observation histories.
//! - [`encoding`] — one-hot and normalized numeric encodings consumed by
//!   the PerfNet neural network and the Gaussian-process comparator.
//! - [`pool`] — contiguous config-major pool encodings and positional
//!   bitmasks, the data layout behind the batch-scoring Ranking loop.

pub mod config;
pub mod encoding;
pub mod param;
pub mod pool;
pub mod sampling;
pub mod space;

pub use config::{Configuration, ParamValue};
pub use encoding::{Encoder, EncodingKind};
pub use param::{DiscreteValue, Domain, ParamDef};
pub use pool::{IndexBuffer, PoolEncoding, PoolIndex, PoolMask};
pub use space::{ParameterSpace, SpaceBuilder, SpaceError};
