//! Parameter definitions.

use serde::{Deserialize, Serialize};

/// One value of a discrete parameter's domain.
///
/// HPC parameters mix kinds: a data-layout choice is a pure category
/// (`"DGZ"`), a thread count is an ordinal integer (`1, 2, 4, …`), a power
/// cap may be a discretized float. The surrogate model treats all of them as
/// categories (histogram bins), but baselines and encodings need the numeric
/// value when one exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DiscreteValue {
    /// An integer-valued level (thread count, set count, cap in watts…).
    Int(i64),
    /// A float-valued level.
    Float(f64),
    /// A pure category (solver name, layout nesting…).
    Name(String),
}

impl DiscreteValue {
    /// Numeric view: `Int`/`Float` map to their value, `Name` to `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            DiscreteValue::Int(i) => Some(*i as f64),
            DiscreteValue::Float(f) => Some(*f),
            DiscreteValue::Name(_) => None,
        }
    }
}

impl std::fmt::Display for DiscreteValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscreteValue::Int(i) => write!(f, "{i}"),
            DiscreteValue::Float(x) => write!(f, "{x}"),
            DiscreteValue::Name(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for DiscreteValue {
    fn from(v: i64) -> Self {
        DiscreteValue::Int(v)
    }
}

impl From<f64> for DiscreteValue {
    fn from(v: f64) -> Self {
        DiscreteValue::Float(v)
    }
}

impl From<&str> for DiscreteValue {
    fn from(v: &str) -> Self {
        DiscreteValue::Name(v.to_string())
    }
}

/// The domain a parameter ranges over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// A finite ordered list of values. Configuration values for a discrete
    /// parameter are stored as indices into this list.
    Discrete(Vec<DiscreteValue>),
    /// A bounded real interval `[lo, hi]`.
    Continuous {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl Domain {
    /// Convenience constructor for an integer-valued discrete domain.
    pub fn discrete_ints(values: &[i64]) -> Domain {
        Domain::Discrete(values.iter().map(|&v| DiscreteValue::Int(v)).collect())
    }

    /// Convenience constructor for a float-valued discrete domain.
    pub fn discrete_floats(values: &[f64]) -> Domain {
        Domain::Discrete(values.iter().map(|&v| DiscreteValue::Float(v)).collect())
    }

    /// Convenience constructor for a categorical (named) domain.
    pub fn categorical(values: &[&str]) -> Domain {
        Domain::Discrete(values.iter().map(|&v| DiscreteValue::from(v)).collect())
    }

    /// Convenience constructor for a continuous domain.
    pub fn continuous(lo: f64, hi: f64) -> Domain {
        Domain::Continuous { lo, hi }
    }

    /// Number of values in a discrete domain; `None` when continuous.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Discrete(v) => Some(v.len()),
            Domain::Continuous { .. } => None,
        }
    }

    /// Whether the domain is discrete.
    pub fn is_discrete(&self) -> bool {
        matches!(self, Domain::Discrete(_))
    }
}

/// A named tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    name: String,
    domain: Domain,
}

impl ParamDef {
    /// Creates a parameter definition.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Self {
            name: name.into(),
            domain,
        }
    }

    /// The parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The values of a discrete domain.
    ///
    /// # Panics
    /// Panics for a continuous parameter.
    pub fn values(&self) -> &[DiscreteValue] {
        match &self.domain {
            Domain::Discrete(v) => v,
            Domain::Continuous { .. } => {
                panic!(
                    "parameter '{}' is continuous and has no value list",
                    self.name
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_value_numeric_views() {
        assert_eq!(DiscreteValue::Int(4).as_f64(), Some(4.0));
        assert_eq!(DiscreteValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(DiscreteValue::from("DGZ").as_f64(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DiscreteValue::Int(8).to_string(), "8");
        assert_eq!(DiscreteValue::from("pmis").to_string(), "pmis");
    }

    #[test]
    fn domain_constructors_and_cardinality() {
        assert_eq!(Domain::discrete_ints(&[1, 2, 4]).cardinality(), Some(3));
        assert_eq!(Domain::categorical(&["a", "b"]).cardinality(), Some(2));
        assert_eq!(Domain::continuous(0.0, 1.0).cardinality(), None);
        assert!(Domain::discrete_floats(&[0.5]).is_discrete());
        assert!(!Domain::continuous(0.0, 1.0).is_discrete());
    }

    #[test]
    fn param_def_accessors() {
        let p = ParamDef::new("omp", Domain::discrete_ints(&[1, 2, 4, 8]));
        assert_eq!(p.name(), "omp");
        assert_eq!(p.values().len(), 4);
    }

    #[test]
    #[should_panic(expected = "continuous")]
    fn values_of_continuous_panics() {
        let p = ParamDef::new("cap", Domain::continuous(50.0, 100.0));
        let _ = p.values();
    }
}
