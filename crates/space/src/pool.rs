//! Flattened pool encodings for the batch-scoring engine.
//!
//! The Ranking selection strategy scores *every* unseen configuration of an
//! enumerated pool each iteration. Walking `Vec<Configuration>` for that is
//! cache-hostile: each candidate is a separate heap allocation of tagged
//! [`ParamValue`](crate::config::ParamValue)s. A [`PoolEncoding`] flattens a
//! fully discrete pool once into a contiguous **config-major** buffer of
//! domain indices (`[cfg0_p0, cfg0_p1, …, cfg1_p0, …]`), narrowed to `u16`
//! when every index fits (the common case — HPC domains have at most a few
//! dozen levels), so the scoring loop is a linear sweep over dense memory.
//!
//! [`PoolMask`] is the companion per-pool-position bitset: the tuner marks
//! evaluated positions instead of hashing full configurations against the
//! history on every candidate visit.

use crate::config::{Configuration, ParamValue};

/// An index type a pool can be encoded with.
pub trait PoolIndex: Copy + Send + Sync {
    /// Widens the stored index back to `usize`.
    fn as_usize(self) -> usize;
}

impl PoolIndex for u16 {
    #[inline]
    fn as_usize(self) -> usize {
        self as usize
    }
}

impl PoolIndex for u32 {
    #[inline]
    fn as_usize(self) -> usize {
        self as usize
    }
}

/// The contiguous config-major index buffer backing a [`PoolEncoding`].
#[derive(Debug, Clone)]
pub enum IndexBuffer {
    /// Narrow encoding: every domain index fits in 16 bits.
    U16(Vec<u16>),
    /// Wide encoding for (pathologically) large domains.
    U32(Vec<u32>),
}

/// A `&[Configuration]` pool flattened into one contiguous index buffer.
///
/// Built once per pool (the pool itself is built once per tuning run) and
/// reused across iterations; see the crate docs of [`pool`](self).
#[derive(Debug, Clone)]
pub struct PoolEncoding {
    n_configs: usize,
    n_params: usize,
    buf: IndexBuffer,
}

impl PoolEncoding {
    /// Flattens `pool`. Returns `None` if the pool cannot be encoded: a
    /// configuration holds a continuous value, or configurations disagree
    /// on arity (callers fall back to the exact per-`Configuration` path).
    pub fn encode(pool: &[Configuration]) -> Option<Self> {
        let n_configs = pool.len();
        let n_params = pool.first().map_or(0, |c| c.len());
        let mut max_index = 0usize;
        for cfg in pool {
            if cfg.len() != n_params {
                return None;
            }
            for &v in cfg.values() {
                match v {
                    ParamValue::Index(i) => max_index = max_index.max(i),
                    ParamValue::Real(_) => return None,
                }
            }
        }
        let buf = if max_index <= u16::MAX as usize {
            IndexBuffer::U16(
                pool.iter()
                    .flat_map(|c| c.values().iter().map(|v| v.index() as u16))
                    .collect(),
            )
        } else {
            IndexBuffer::U32(
                pool.iter()
                    .flat_map(|c| c.values().iter().map(|v| v.index() as u32))
                    .collect(),
            )
        };
        Some(Self {
            n_configs,
            n_params,
            buf,
        })
    }

    /// Number of configurations in the encoded pool.
    pub fn n_configs(&self) -> usize {
        self.n_configs
    }

    /// Arity (values per configuration).
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The raw config-major buffer (length `n_configs * n_params`).
    pub fn buffer(&self) -> &IndexBuffer {
        &self.buf
    }

    /// The domain index of parameter `param` in configuration `config`.
    ///
    /// # Panics
    /// Panics if either coordinate is out of range.
    pub fn index(&self, config: usize, param: usize) -> usize {
        assert!(config < self.n_configs && param < self.n_params);
        let at = config * self.n_params + param;
        match &self.buf {
            IndexBuffer::U16(b) => b[at] as usize,
            IndexBuffer::U32(b) => b[at] as usize,
        }
    }
}

/// A fixed-length bitset over pool positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolMask {
    words: Vec<u64>,
    len: usize,
}

impl PoolMask {
    /// Creates an all-clear mask over `len` positions.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "mask position {i} out of {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether position `i` is set.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "mask position {i} out of {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set positions.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_config_major_u16() {
        let pool = vec![
            Configuration::from_indices(&[0, 2]),
            Configuration::from_indices(&[1, 0]),
            Configuration::from_indices(&[3, 1]),
        ];
        let enc = PoolEncoding::encode(&pool).unwrap();
        assert_eq!(enc.n_configs(), 3);
        assert_eq!(enc.n_params(), 2);
        assert!(matches!(enc.buffer(), IndexBuffer::U16(_)));
        for (c, cfg) in pool.iter().enumerate() {
            for p in 0..2 {
                assert_eq!(enc.index(c, p), cfg.value(p).index());
            }
        }
        if let IndexBuffer::U16(b) = enc.buffer() {
            assert_eq!(b, &vec![0, 2, 1, 0, 3, 1]);
        }
    }

    #[test]
    fn widens_to_u32_for_large_domains() {
        let pool = vec![Configuration::from_indices(&[70_000, 1])];
        let enc = PoolEncoding::encode(&pool).unwrap();
        assert!(matches!(enc.buffer(), IndexBuffer::U32(_)));
        assert_eq!(enc.index(0, 0), 70_000);
    }

    #[test]
    fn continuous_values_are_unencodable() {
        let pool = vec![Configuration::new(vec![ParamValue::Real(0.5)])];
        assert!(PoolEncoding::encode(&pool).is_none());
    }

    #[test]
    fn ragged_pools_are_unencodable() {
        let pool = vec![
            Configuration::from_indices(&[0, 1]),
            Configuration::from_indices(&[0]),
        ];
        assert!(PoolEncoding::encode(&pool).is_none());
    }

    #[test]
    fn empty_pool_encodes_trivially() {
        let enc = PoolEncoding::encode(&[]).unwrap();
        assert_eq!(enc.n_configs(), 0);
        assert_eq!(enc.n_params(), 0);
    }

    #[test]
    fn mask_set_get_count() {
        let mut m = PoolMask::new(130);
        assert_eq!(m.len(), 130);
        assert!(!m.get(0) && !m.get(129));
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(129);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(128));
        assert_eq!(m.count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn mask_bounds_are_checked() {
        let m = PoolMask::new(10);
        let _ = m.get(10);
    }
}
