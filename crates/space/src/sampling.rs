//! Random configuration sampling.
//!
//! HiPerBOt bootstraps with "a small set of training samples uniformly at
//! random from the configuration space" (paper §III-C step 1) — 20 samples
//! in the paper's experiments. The Random baseline (§V) is the same sampler
//! run for the whole budget.

use crate::config::{Configuration, ParamValue};
use crate::space::ParameterSpace;
use rand::seq::SliceRandom;
use rand::Rng;
use rustc_hash::FxHashSet;

/// How many rejection-sampling attempts to make per requested sample before
/// concluding the feasible region is too small to sample.
const MAX_REJECTIONS_PER_SAMPLE: usize = 10_000;

/// Draws one configuration uniformly from the unconstrained product
/// (discrete params by index, continuous params uniformly in range).
fn sample_unconstrained<R: Rng + ?Sized>(space: &ParameterSpace, rng: &mut R) -> Configuration {
    let values = space
        .params()
        .iter()
        .map(|p| match p.domain() {
            crate::param::Domain::Discrete(v) => ParamValue::Index(rng.gen_range(0..v.len())),
            crate::param::Domain::Continuous { lo, hi } => {
                ParamValue::Real(rng.gen_range(*lo..*hi))
            }
        })
        .collect();
    Configuration::new(values)
}

/// Draws one **feasible** configuration uniformly at random, by rejection.
///
/// # Panics
/// Panics if no feasible configuration is found within the rejection budget
/// (the feasible region is empty or vanishingly small).
pub fn sample_uniform<R: Rng + ?Sized>(space: &ParameterSpace, rng: &mut R) -> Configuration {
    for _ in 0..MAX_REJECTIONS_PER_SAMPLE {
        let c = sample_unconstrained(space, rng);
        if space.is_feasible(&c) {
            return c;
        }
    }
    panic!("could not sample a feasible configuration: feasible region too small");
}

/// Draws `n` **distinct** feasible configurations uniformly at random.
///
/// Falls back to enumerating the feasible set when the space is fully
/// discrete and `n` is a large fraction of it, to stay efficient near
/// exhaustion; for continuous spaces distinctness is near-automatic.
///
/// # Panics
/// Panics if the space cannot supply `n` distinct feasible configurations.
pub fn sample_distinct<R: Rng + ?Sized>(
    space: &ParameterSpace,
    n: usize,
    rng: &mut R,
) -> Vec<Configuration> {
    if space.is_fully_discrete() {
        // When asking for a big fraction of a small discrete space, rejection
        // sampling for distinctness degenerates; shuffle the feasible set.
        let product = space.product_cardinality().expect("discrete");
        if product <= 4 * n || product <= 4096 {
            let mut all = space.enumerate();
            assert!(
                all.len() >= n,
                "requested {n} distinct configurations but only {} are feasible",
                all.len()
            );
            partial_shuffle(&mut all, n, rng);
            all.truncate(n);
            return all;
        }
    }
    let mut seen = FxHashSet::default();
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while out.len() < n {
        attempts += 1;
        assert!(
            attempts <= MAX_REJECTIONS_PER_SAMPLE * n.max(1),
            "could not draw {n} distinct feasible configurations"
        );
        let c = sample_uniform(space, rng);
        if seen.insert(c.clone()) {
            out.push(c);
        }
    }
    out
}

/// Fisher–Yates shuffle of just the first `n` positions (all we consume).
fn partial_shuffle<T, R: Rng + ?Sized>(items: &mut [T], n: usize, rng: &mut R) {
    let len = items.len();
    for i in 0..n.min(len.saturating_sub(1)) {
        let j = rng.gen_range(i..len);
        items.swap(i, j);
    }
}

/// Draws `n` configurations by Latin-hypercube design: each parameter's
/// range is cut into `n` strata and every stratum is used exactly once per
/// parameter (discrete domains stratify over value indices, continuous over
/// the interval). Guarantees one-dimensional coverage that uniform random
/// bootstraps lack — an alternative initialization for the tuner.
///
/// Infeasible combinations are repaired by re-pairing strata between
/// parameters (bounded retries), falling back to rejection sampling for
/// stubborn rows; the one-dimensional stratification is preserved whenever
/// the constraint structure allows it. Distinctness across rows is enforced
/// for discrete spaces when the space is large enough.
///
/// # Panics
/// Panics if the feasible space cannot supply `n` distinct configurations.
pub fn latin_hypercube<R: Rng + ?Sized>(
    space: &ParameterSpace,
    n: usize,
    rng: &mut R,
) -> Vec<Configuration> {
    assert!(n > 0, "need at least one sample");
    let d = space.n_params();
    // One stratum permutation per parameter.
    let mut strata: Vec<Vec<usize>> = (0..d)
        .map(|_| {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(rng);
            idx
        })
        .collect();

    let value_for = |space: &ParameterSpace, p: usize, stratum: usize, rng: &mut R| {
        match space.params()[p].domain() {
            crate::param::Domain::Discrete(vals) => {
                // Map stratum s of n onto the value grid.
                let m = vals.len();
                let pos = ((stratum as f64 + rng.gen_range(0.0..1.0)) / n as f64 * m as f64).floor()
                    as usize;
                ParamValue::Index(pos.min(m - 1))
            }
            crate::param::Domain::Continuous { lo, hi } => {
                let u = (stratum as f64 + rng.gen_range(0.0..1.0)) / n as f64;
                ParamValue::Real(lo + u * (hi - lo))
            }
        }
    };

    let mut seen = FxHashSet::default();
    let mut out = Vec::with_capacity(n);
    for row in 0..n {
        let mut cfg = Configuration::new(
            (0..d)
                .map(|p| value_for(space, p, strata[p][row], rng))
                .collect(),
        );
        // Repair: re-pair this row's strata with later rows until feasible
        // and unseen.
        let mut attempts = 0;
        while !space.is_feasible(&cfg) || seen.contains(&cfg) {
            attempts += 1;
            if attempts > 50 {
                // Constraint too entangled for stratified repair: fall back.
                cfg = sample_uniform(space, rng);
                let mut guard = 0;
                while seen.contains(&cfg) {
                    cfg = sample_uniform(space, rng);
                    guard += 1;
                    assert!(
                        guard < MAX_REJECTIONS_PER_SAMPLE,
                        "could not draw {n} distinct feasible configurations"
                    );
                }
                break;
            }
            // Swap a random parameter's stratum with a random later row.
            let p = rng.gen_range(0..d);
            if row + 1 < n {
                let other = rng.gen_range(row + 1..n);
                strata[p].swap(row, other);
            }
            cfg = Configuration::new(
                (0..d)
                    .map(|p| value_for(space, p, strata[p][row], rng))
                    .collect(),
            );
        }
        seen.insert(cfg.clone());
        out.push(cfg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Domain, ParamDef};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space_2x3() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::discrete_ints(&[0, 1])))
            .param(ParamDef::new("b", Domain::discrete_ints(&[0, 1, 2])))
            .build()
            .unwrap()
    }

    #[test]
    fn uniform_sample_is_feasible() {
        let s = ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::discrete_ints(&[0, 1, 2, 3])))
            .constraint("even", |c, _| c.value(0).index() % 2 == 0)
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(s.is_feasible(&sample_uniform(&s, &mut rng)));
        }
    }

    #[test]
    fn uniform_sample_covers_the_space() {
        let s = space_2x3();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(sample_uniform(&s, &mut rng));
        }
        assert_eq!(seen.len(), 6, "all 6 configurations should appear");
    }

    #[test]
    fn distinct_samples_are_distinct() {
        let s = space_2x3();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let samples = sample_distinct(&s, 6, &mut rng);
        let set: std::collections::HashSet<_> = samples.iter().cloned().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn too_many_distinct_panics() {
        let s = space_2x3();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = sample_distinct(&s, 7, &mut rng);
    }

    #[test]
    fn continuous_sampling_stays_in_range() {
        let s = ParameterSpace::builder()
            .param(ParamDef::new("x", Domain::continuous(-2.0, 3.0)))
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..100 {
            let c = sample_uniform(&s, &mut rng);
            let v = c.value(0).as_f64();
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn distinct_on_large_space_uses_rejection_path() {
        let vals: Vec<i64> = (0..40).collect();
        let s = ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::discrete_ints(&vals)))
            .param(ParamDef::new("b", Domain::discrete_ints(&vals)))
            .param(ParamDef::new("c", Domain::discrete_ints(&vals)))
            .build()
            .unwrap(); // 64000 configs > 4096 and > 4n
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let samples = sample_distinct(&s, 50, &mut rng);
        let set: std::collections::HashSet<_> = samples.iter().cloned().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn lhs_covers_every_value_of_matching_cardinality() {
        // n == cardinality of each domain ⇒ every value appears exactly once
        // per parameter (the defining LHS property).
        let s = ParameterSpace::builder()
            .param(ParamDef::new(
                "a",
                Domain::discrete_ints(&[0, 1, 2, 3, 4, 5]),
            ))
            .param(ParamDef::new(
                "b",
                Domain::discrete_ints(&[0, 1, 2, 3, 4, 5]),
            ))
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let samples = latin_hypercube(&s, 6, &mut rng);
        assert_eq!(samples.len(), 6);
        for p in 0..2 {
            let mut seen: Vec<usize> = samples.iter().map(|c| c.value(p).index()).collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5], "param {p} not stratified");
        }
    }

    #[test]
    fn lhs_stratifies_continuous_dimensions() {
        let s = ParameterSpace::builder()
            .param(ParamDef::new("x", Domain::continuous(0.0, 1.0)))
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 10;
        let samples = latin_hypercube(&s, n, &mut rng);
        let mut strata_hit = vec![false; n];
        for c in &samples {
            let u = c.value(0).as_f64();
            strata_hit[((u * n as f64) as usize).min(n - 1)] = true;
        }
        assert!(strata_hit.iter().all(|&h| h), "{strata_hit:?}");
    }

    #[test]
    fn lhs_respects_constraints_and_distinctness() {
        let vals: Vec<i64> = (0..10).collect();
        let s = ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::discrete_ints(&vals)))
            .param(ParamDef::new("b", Domain::discrete_ints(&vals)))
            .constraint("a+b <= 14", |c, _| {
                c.value(0).index() + c.value(1).index() <= 14
            })
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let samples = latin_hypercube(&s, 12, &mut rng);
        assert_eq!(samples.len(), 12);
        let set: std::collections::HashSet<_> = samples.iter().cloned().collect();
        assert_eq!(set.len(), 12);
        for c in &samples {
            assert!(s.is_feasible(c));
        }
    }

    proptest! {
        #[test]
        fn lhs_is_deterministic_and_feasible(seed in 0u64..200, n in 1usize..15) {
            let vals: Vec<i64> = (0..8).collect();
            let s = ParameterSpace::builder()
                .param(ParamDef::new("a", Domain::discrete_ints(&vals)))
                .param(ParamDef::new("b", Domain::discrete_ints(&vals)))
                .build()
                .unwrap();
            let mut r1 = ChaCha8Rng::seed_from_u64(seed);
            let mut r2 = ChaCha8Rng::seed_from_u64(seed);
            let a = latin_hypercube(&s, n, &mut r1);
            let b = latin_hypercube(&s, n, &mut r2);
            prop_assert_eq!(&a, &b);
            for c in &a {
                prop_assert!(s.is_feasible(c));
            }
        }
    }

    proptest! {
        #[test]
        fn sampling_is_deterministic_per_seed(seed in 0u64..500) {
            let s = space_2x3();
            let mut r1 = ChaCha8Rng::seed_from_u64(seed);
            let mut r2 = ChaCha8Rng::seed_from_u64(seed);
            prop_assert_eq!(
                sample_distinct(&s, 4, &mut r1),
                sample_distinct(&s, 4, &mut r2)
            );
        }

        #[test]
        fn distinct_count_honored(n in 1usize..6, seed in 0u64..100) {
            let s = space_2x3();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let samples = sample_distinct(&s, n, &mut rng);
            prop_assert_eq!(samples.len(), n);
        }
    }
}
