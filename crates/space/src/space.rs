//! The [`ParameterSpace`]: definitions + feasibility constraints.

use crate::config::{Configuration, ParamValue};
use crate::param::{Domain, ParamDef};
use std::fmt;
use std::sync::Arc;

/// A named feasibility predicate over configurations.
///
/// The measured datasets the paper uses were collected on real machines
/// where some parameter combinations are invalid (e.g. `ranks × threads`
/// exceeding a node's cores, or a group-set count that does not divide the
/// number of energy groups); those runs are simply absent, which is why the
/// datasets have non-product cardinalities. Constraints reproduce that.
/// The predicate type a [`Constraint`] wraps.
type ConstraintFn = dyn Fn(&Configuration, &[ParamDef]) -> bool + Send + Sync;

#[derive(Clone)]
pub struct Constraint {
    name: String,
    predicate: Arc<ConstraintFn>,
}

impl Constraint {
    /// Creates a named constraint.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(&Configuration, &[ParamDef]) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            predicate: Arc::new(predicate),
        }
    }

    /// The constraint's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the predicate.
    pub fn is_satisfied(&self, cfg: &Configuration, defs: &[ParamDef]) -> bool {
        (self.predicate)(cfg, defs)
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Constraint")
            .field("name", &self.name)
            .finish()
    }
}

/// Errors from [`SpaceBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The space has no parameters.
    NoParameters,
    /// Two parameters share a name.
    DuplicateName(String),
    /// A discrete domain has no values.
    EmptyDomain(String),
    /// A continuous domain has `lo >= hi` or non-finite bounds.
    InvalidRange(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::NoParameters => write!(f, "parameter space has no parameters"),
            SpaceError::DuplicateName(n) => write!(f, "duplicate parameter name '{n}'"),
            SpaceError::EmptyDomain(n) => write!(f, "parameter '{n}' has an empty domain"),
            SpaceError::InvalidRange(n) => {
                write!(f, "parameter '{n}' has an invalid continuous range")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// Builder for [`ParameterSpace`].
#[derive(Default)]
pub struct SpaceBuilder {
    params: Vec<ParamDef>,
    constraints: Vec<Constraint>,
}

impl SpaceBuilder {
    /// Adds a parameter.
    pub fn param(mut self, def: ParamDef) -> Self {
        self.params.push(def);
        self
    }

    /// Adds a feasibility constraint.
    pub fn constraint(
        mut self,
        name: impl Into<String>,
        predicate: impl Fn(&Configuration, &[ParamDef]) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.constraints.push(Constraint::new(name, predicate));
        self
    }

    /// Validates and builds the space.
    pub fn build(self) -> Result<ParameterSpace, SpaceError> {
        if self.params.is_empty() {
            return Err(SpaceError::NoParameters);
        }
        let mut seen = std::collections::HashSet::new();
        for p in &self.params {
            if !seen.insert(p.name().to_string()) {
                return Err(SpaceError::DuplicateName(p.name().to_string()));
            }
            match p.domain() {
                Domain::Discrete(v) if v.is_empty() => {
                    return Err(SpaceError::EmptyDomain(p.name().to_string()))
                }
                Domain::Continuous { lo, hi } if !(lo.is_finite() && hi.is_finite() && lo < hi) => {
                    return Err(SpaceError::InvalidRange(p.name().to_string()))
                }
                _ => {}
            }
        }
        Ok(ParameterSpace {
            params: self.params,
            constraints: self.constraints,
        })
    }
}

/// An application's tunable parameter space (paper §III: `x = [x_1…x_n]`).
#[derive(Debug, Clone)]
pub struct ParameterSpace {
    params: Vec<ParamDef>,
    constraints: Vec<Constraint>,
}

impl ParameterSpace {
    /// Starts building a space.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder::default()
    }

    /// The parameter definitions, in configuration order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Number of parameters `n`.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// Looks up a parameter's position by name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name() == name)
    }

    /// Whether every parameter is discrete (required for enumeration and
    /// for the Ranking selection strategy).
    pub fn is_fully_discrete(&self) -> bool {
        self.params.iter().all(|p| p.domain().is_discrete())
    }

    /// Whether `cfg` satisfies all feasibility constraints.
    pub fn is_feasible(&self, cfg: &Configuration) -> bool {
        self.constraints
            .iter()
            .all(|c| c.is_satisfied(cfg, &self.params))
    }

    /// Cardinality of the *unconstrained* cross product; `None` if any
    /// parameter is continuous.
    pub fn product_cardinality(&self) -> Option<usize> {
        self.params
            .iter()
            .map(|p| p.domain().cardinality())
            .try_fold(1usize, |acc, c| c.map(|c| acc * c))
    }

    /// Converts a mixed-radix index into the unconstrained product to a
    /// configuration. Index 0 is all-first-values; the **last** parameter
    /// varies fastest.
    ///
    /// # Panics
    /// Panics if the space has continuous parameters or `index` is out of
    /// range.
    pub fn config_at(&self, index: usize) -> Configuration {
        let total = self
            .product_cardinality()
            .expect("config_at requires a fully discrete space");
        assert!(index < total, "configuration index {index} out of {total}");
        let mut rem = index;
        let mut indices = vec![0usize; self.params.len()];
        for (i, p) in self.params.iter().enumerate().rev() {
            let card = p.domain().cardinality().expect("discrete");
            indices[i] = rem % card;
            rem /= card;
        }
        Configuration::from_indices(&indices)
    }

    /// Inverse of [`config_at`](Self::config_at).
    ///
    /// # Panics
    /// Panics if the space has continuous parameters or `cfg` holds a
    /// continuous value.
    pub fn index_of(&self, cfg: &Configuration) -> usize {
        assert_eq!(cfg.len(), self.params.len());
        let mut index = 0usize;
        for (i, p) in self.params.iter().enumerate() {
            let card = p.domain().cardinality().expect("discrete space");
            let v = cfg.value(i).index();
            debug_assert!(v < card);
            index = index * card + v;
        }
        index
    }

    /// Enumerates every **feasible** configuration in mixed-radix order.
    ///
    /// # Panics
    /// Panics if the space has continuous parameters.
    pub fn enumerate(&self) -> Vec<Configuration> {
        let total = self
            .product_cardinality()
            .expect("enumerate requires a fully discrete space");
        (0..total)
            .map(|i| self.config_at(i))
            .filter(|c| self.is_feasible(c))
            .collect()
    }

    /// All feasible configurations at Hamming distance exactly 1 from `cfg`
    /// (one parameter changed to a different domain value). This is the
    /// edge relation of the configuration graph that the GEIST baseline
    /// propagates labels over.
    ///
    /// # Panics
    /// Panics if the space has continuous parameters.
    pub fn neighbors(&self, cfg: &Configuration) -> Vec<Configuration> {
        assert!(
            self.is_fully_discrete(),
            "neighbors require a discrete space"
        );
        let mut out = Vec::new();
        for (i, p) in self.params.iter().enumerate() {
            let card = p.domain().cardinality().expect("discrete");
            let current = cfg.value(i).index();
            for v in 0..card {
                if v == current {
                    continue;
                }
                let mut n = cfg.clone();
                n.set_value(i, ParamValue::Index(v));
                if self.is_feasible(&n) {
                    out.push(n);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::discrete_ints(&[0, 1])))
            .param(ParamDef::new("b", Domain::categorical(&["x", "y", "z"])))
            .param(ParamDef::new("c", Domain::discrete_ints(&[10, 20])))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_empty_space() {
        assert_eq!(
            ParameterSpace::builder().build().unwrap_err(),
            SpaceError::NoParameters
        );
    }

    #[test]
    fn builder_rejects_duplicate_names() {
        let err = ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::discrete_ints(&[1])))
            .param(ParamDef::new("a", Domain::discrete_ints(&[2])))
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::DuplicateName("a".into()));
    }

    #[test]
    fn builder_rejects_empty_domain() {
        let err = ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::Discrete(vec![])))
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::EmptyDomain("a".into()));
    }

    #[test]
    fn builder_rejects_bad_range() {
        let err = ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::continuous(1.0, 1.0)))
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::InvalidRange("a".into()));
        let err = ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::continuous(0.0, f64::NAN)))
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::InvalidRange("a".into()));
    }

    #[test]
    fn product_cardinality_multiplies() {
        assert_eq!(small_space().product_cardinality(), Some(12));
        let mixed = ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::discrete_ints(&[1])))
            .param(ParamDef::new("b", Domain::continuous(0.0, 1.0)))
            .build()
            .unwrap();
        assert_eq!(mixed.product_cardinality(), None);
        assert!(!mixed.is_fully_discrete());
    }

    #[test]
    fn enumerate_covers_product_without_constraints() {
        let s = small_space();
        let all = s.enumerate();
        assert_eq!(all.len(), 12);
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn enumerate_respects_constraints() {
        let s = ParameterSpace::builder()
            .param(ParamDef::new("ranks", Domain::discrete_ints(&[1, 2, 4])))
            .param(ParamDef::new("omp", Domain::discrete_ints(&[1, 2, 4])))
            .constraint("ranks*omp <= 4", |cfg, defs| {
                cfg.numeric_value(0, &defs[0]) * cfg.numeric_value(1, &defs[1]) <= 4.0
            })
            .build()
            .unwrap();
        let all = s.enumerate();
        // (1,1) (1,2) (1,4) (2,1) (2,2) (4,1) = 6 feasible
        assert_eq!(all.len(), 6);
        for c in &all {
            assert!(s.is_feasible(c));
        }
    }

    #[test]
    fn config_at_uses_last_param_fastest() {
        let s = small_space();
        assert_eq!(s.config_at(0), Configuration::from_indices(&[0, 0, 0]));
        assert_eq!(s.config_at(1), Configuration::from_indices(&[0, 0, 1]));
        assert_eq!(s.config_at(2), Configuration::from_indices(&[0, 1, 0]));
        assert_eq!(s.config_at(11), Configuration::from_indices(&[1, 2, 1]));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn config_at_out_of_range_panics() {
        let _ = small_space().config_at(12);
    }

    #[test]
    fn neighbors_change_exactly_one_param() {
        let s = small_space();
        let c = Configuration::from_indices(&[0, 1, 0]);
        let ns = s.neighbors(&c);
        // (2-1) + (3-1) + (2-1) = 4 neighbors
        assert_eq!(ns.len(), 4);
        for n in &ns {
            let diff = (0..3).filter(|&i| n.value(i) != c.value(i)).count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn neighbors_exclude_infeasible() {
        let s = ParameterSpace::builder()
            .param(ParamDef::new("a", Domain::discrete_ints(&[0, 1, 2])))
            .constraint("a != 1", |cfg, _| cfg.value(0).index() != 1)
            .build()
            .unwrap();
        let ns = s.neighbors(&Configuration::from_indices(&[0]));
        assert_eq!(ns, vec![Configuration::from_indices(&[2])]);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let s = small_space();
        for c in s.enumerate() {
            for n in s.neighbors(&c) {
                assert!(s.neighbors(&n).contains(&c));
            }
        }
    }

    #[test]
    fn param_index_lookup() {
        let s = small_space();
        assert_eq!(s.param_index("b"), Some(1));
        assert_eq!(s.param_index("missing"), None);
    }

    proptest! {
        #[test]
        fn index_config_roundtrip(
            cards in proptest::collection::vec(1usize..5, 1..5),
            seed in 0usize..1000,
        ) {
            let mut b = ParameterSpace::builder();
            for (i, &c) in cards.iter().enumerate() {
                let vals: Vec<i64> = (0..c as i64).collect();
                b = b.param(ParamDef::new(format!("p{i}"), Domain::discrete_ints(&vals)));
            }
            let s = b.build().unwrap();
            let total = s.product_cardinality().unwrap();
            let idx = seed % total;
            prop_assert_eq!(s.index_of(&s.config_at(idx)), idx);
        }

        #[test]
        fn enumeration_is_sorted_by_index(
            cards in proptest::collection::vec(1usize..4, 1..4),
        ) {
            let mut b = ParameterSpace::builder();
            for (i, &c) in cards.iter().enumerate() {
                let vals: Vec<i64> = (0..c as i64).collect();
                b = b.param(ParamDef::new(format!("p{i}"), Domain::discrete_ints(&vals)));
            }
            let s = b.build().unwrap();
            let all = s.enumerate();
            let idxs: Vec<usize> = all.iter().map(|c| s.index_of(c)).collect();
            let mut sorted = idxs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(idxs, sorted);
        }
    }
}
