//! Property-based invariants tying the space substrate's pieces together:
//! enumeration, indexing, neighborhoods, sampling, and encodings must agree
//! on randomized spaces.

use hiperbot_space::sampling::{latin_hypercube, sample_distinct};
use hiperbot_space::{Configuration, Domain, Encoder, EncodingKind, ParamDef, ParameterSpace};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_discrete_space() -> impl Strategy<Value = ParameterSpace> {
    proptest::collection::vec(2usize..=5, 1..=4).prop_map(|cards| {
        let mut b = ParameterSpace::builder();
        for (i, c) in cards.into_iter().enumerate() {
            let vals: Vec<i64> = (0..c as i64).collect();
            b = b.param(ParamDef::new(format!("p{i}"), Domain::discrete_ints(&vals)));
        }
        b.build().expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn enumeration_indexing_roundtrip(space in arb_discrete_space()) {
        let all = space.enumerate();
        prop_assert_eq!(all.len(), space.product_cardinality().unwrap());
        for (i, cfg) in all.iter().enumerate() {
            prop_assert_eq!(space.index_of(cfg), i);
            prop_assert_eq!(&space.config_at(i), cfg);
        }
    }

    #[test]
    fn neighbor_counts_match_domain_sizes(space in arb_discrete_space()) {
        // Without constraints, |N(v)| = Σ (card_i - 1) for every node.
        let expected: usize = space
            .params()
            .iter()
            .map(|p| p.domain().cardinality().unwrap() - 1)
            .sum();
        for cfg in space.enumerate().iter().take(16) {
            prop_assert_eq!(space.neighbors(cfg).len(), expected);
        }
    }

    #[test]
    fn one_hot_rows_always_sum_to_n_params(space in arb_discrete_space(), seed in 0u64..100) {
        let encoder = Encoder::new(&space, EncodingKind::OneHot);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for cfg in sample_distinct(&space, 4.min(space.product_cardinality().unwrap()), &mut rng) {
            let v = encoder.encode(&cfg);
            let sum: f64 = v.iter().sum();
            prop_assert!((sum - space.n_params() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_encoding_distinguishes_distinct_configs(
        space in arb_discrete_space(),
    ) {
        let encoder = Encoder::new(&space, EncodingKind::Normalized);
        let all = space.enumerate();
        // Any two distinct configurations must encode differently.
        for (i, a) in all.iter().enumerate().step_by(7) {
            for b in all.iter().skip(i + 1).step_by(11) {
                let (ea, eb) = (encoder.encode(a), encoder.encode(b));
                prop_assert_ne!(ea, eb, "{:?} vs {:?}", a, b);
            }
        }
    }

    #[test]
    fn lhs_and_uniform_agree_on_feasibility_and_count(
        space in arb_discrete_space(),
        seed in 0u64..100,
    ) {
        let n = 4.min(space.product_cardinality().unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for samples in [
            sample_distinct(&space, n, &mut rng),
            latin_hypercube(&space, n, &mut rng),
        ] {
            prop_assert_eq!(samples.len(), n);
            for c in &samples {
                prop_assert!(space.is_feasible(c));
                prop_assert_eq!(c.len(), space.n_params());
            }
        }
    }

    #[test]
    fn constraints_shrink_but_never_corrupt_enumeration(
        cards in proptest::collection::vec(2usize..=4, 2..=3),
        threshold in 1usize..6,
    ) {
        let mut b = ParameterSpace::builder();
        for (i, c) in cards.iter().enumerate() {
            let vals: Vec<i64> = (0..*c as i64).collect();
            b = b.param(ParamDef::new(format!("p{i}"), Domain::discrete_ints(&vals)));
        }
        let constrained = b
            .constraint("sum <= threshold", move |c: &Configuration, _d: &[ParamDef]| {
                (0..c.len()).map(|i| c.value(i).index()).sum::<usize>() <= threshold
            })
            .build()
            .unwrap();
        let feasible = constrained.enumerate();
        for c in &feasible {
            let sum: usize = (0..c.len()).map(|i| c.value(i).index()).sum();
            prop_assert!(sum <= threshold);
        }
        // the unconstrained count bounds the feasible count
        prop_assert!(feasible.len() <= constrained.product_cardinality().unwrap());
        // all-zeros is always feasible under this constraint
        prop_assert!(!feasible.is_empty());
    }
}
