//! Rank and linear correlation coefficients.
//!
//! Used by the evaluation harness to quantify agreement between parameter-
//! importance rankings (Table I: does the 10 %-sample surrogate's ranking
//! match the full-data ranking?) and between source- and target-scale
//! objectives (the premise of transfer learning, §VII).

/// Pearson linear correlation of two equal-length samples.
///
/// Returns 0 when either sample has zero variance.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    assert!(!x.is_empty(), "empty samples");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Fractional ranks (average ranks for ties), 1-based.
pub fn ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; x.len()];
    let mut i = 0;
    while i < idx.len() {
        // find the tie group [i, j)
        let mut j = i + 1;
        while j < idx.len() && x[idx[j]] == x[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // average of ranks i+1..=j
        for &k in &idx[i..j] {
            out[k] = avg_rank;
        }
        i = j;
    }
    out
}

/// Spearman rank correlation: Pearson correlation of the rank vectors
/// (tie-aware).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    pearson(&ranks(x), &ranks(y))
}

/// Kendall's τ-a rank correlation (concordant minus discordant pairs over
/// all pairs; ties count as neither). O(n²) — fine for ranking lists.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let n = x.len();
    assert!(n >= 2, "need at least two observations");
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            let s = dx * dy;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pearson_of_identical_is_one() {
        let x = [1.0, 2.0, 5.0, 3.0];
        assert!((pearson(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_negated_is_minus_one() {
        let x = [1.0, 2.0, 5.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_sample_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn ranks_handle_ties_by_averaging() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_of_sorted_input_are_identity() {
        let r = ranks(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn spearman_sees_monotone_nonlinear_relations() {
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        // Pearson would be < 1 here.
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn kendall_known_value() {
        // x = 1,2,3; y = 1,3,2 → pairs: (1,2)c, (1,3)c, (2,3)d → (2-1)/3
        let t = kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 3.0, 2.0]);
        assert!((t - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_of_reversed_is_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&x, &y) + 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn correlations_are_bounded(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            for c in [pearson(&x, &y), spearman(&x, &y), kendall_tau(&x, &y)] {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c), "{c}");
            }
        }

        #[test]
        fn correlations_are_symmetric(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..30)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            prop_assert!((pearson(&x, &y) - pearson(&y, &x)).abs() < 1e-12);
            prop_assert!((spearman(&x, &y) - spearman(&y, &x)).abs() < 1e-12);
            prop_assert!((kendall_tau(&x, &y) - kendall_tau(&y, &x)).abs() < 1e-12);
        }

        #[test]
        fn ranks_are_a_permutation_of_1_to_n_without_ties(
            mut xs in proptest::collection::vec(-1e6f64..1e6, 1..40)
        ) {
            xs.dedup_by(|a, b| a == b);
            let r = ranks(&xs);
            let mut sorted = r.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (i, v) in sorted.iter().enumerate() {
                prop_assert!((v - (i + 1) as f64).abs() < 1e-12);
            }
        }
    }
}
