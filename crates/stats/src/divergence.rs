//! Kullback–Leibler and Jensen–Shannon divergences.
//!
//! The parameter-importance analysis (paper §VI, eqs. 13–14) scores each
//! tunable parameter by the JS divergence between its good-configuration
//! density `p_g(x_i)` and bad-configuration density `p_b(x_i)`: parameters
//! whose good and bad value distributions differ strongly matter most. JS
//! divergence is chosen over KL for its symmetry; with natural logarithms it
//! is bounded by `ln 2`.

/// KL divergence `D_KL(P ‖ Q) = Σ p · ln(p/q)` for discrete distributions.
///
/// Terms with `p = 0` contribute zero (the `0·ln 0 = 0` convention). Terms
/// with `p > 0, q = 0` would be infinite; callers should smooth their
/// distributions first (see [`crate::histogram::SmoothedHistogram`]), but we
/// return `f64::INFINITY` rather than panic so importance analysis on raw
/// histograms degrades gracefully.
///
/// # Panics
/// Panics if the slices have different lengths or contain negative values.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        assert!(pi >= 0.0 && qi >= 0.0, "probabilities must be non-negative");
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return f64::INFINITY;
        }
        acc += pi * (pi / qi).ln();
    }
    acc
}

/// JS divergence `½ D_KL(P‖M) + ½ D_KL(Q‖M)` with `M = (P+Q)/2` (paper
/// eq. 13). Symmetric, non-negative, and bounded by `ln 2 ≈ 0.6931` in nats.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// JS divergence between two continuous densities, approximated by
/// discretizing both pdfs onto a uniform grid of `bins` cells over
/// `[lo, hi]` and renormalizing.
///
/// This is how the importance analysis handles continuous parameters (e.g.
/// a power cap treated as continuous): both KDEs are evaluated on the same
/// grid and compared as discrete distributions.
pub fn js_divergence_continuous(
    pdf_p: impl Fn(f64) -> f64,
    pdf_q: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    bins: usize,
) -> f64 {
    assert!(bins > 0, "need at least one bin");
    assert!(hi > lo, "empty interval");
    let dx = (hi - lo) / bins as f64;
    let mut p = Vec::with_capacity(bins);
    let mut q = Vec::with_capacity(bins);
    for i in 0..bins {
        let x = lo + (i as f64 + 0.5) * dx;
        p.push(pdf_p(x).max(0.0));
        q.push(pdf_q(x).max(0.0));
    }
    normalize(&mut p);
    normalize(&mut q);
    js_divergence(&p, &q)
}

/// Hellinger distance `H(P,Q) = (1/√2)·‖√P − √Q‖₂` — an alternative
/// importance measure (§VI notes "a variety of choices" exist; the
/// ablation bench compares them). Bounded in [0, 1].
pub fn hellinger(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    let s: f64 = p
        .iter()
        .zip(q)
        .map(|(&a, &b)| {
            assert!(a >= 0.0 && b >= 0.0, "probabilities must be non-negative");
            (a.sqrt() - b.sqrt()).powi(2)
        })
        .sum();
    (0.5 * s).sqrt()
}

/// Total-variation distance `½·Σ|p − q|`. Bounded in [0, 1].
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    } else {
        // Zero density everywhere on the grid: treat as uniform so the
        // divergence is defined (and will be 0 against another zero pdf).
        let u = 1.0 / v.len() as f64;
        for x in v.iter_mut() {
            *x = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const LN2: f64 = std::f64::consts::LN_2;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-15);
    }

    #[test]
    fn kl_known_value() {
        // D_KL([1,0] || [0.5,0.5]) = ln 2
        assert!((kl_divergence(&[1.0, 0.0], &[0.5, 0.5]) - LN2).abs() < 1e-12);
    }

    #[test]
    fn kl_is_infinite_when_support_mismatch() {
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn kl_zero_p_terms_are_skipped() {
        assert!((kl_divergence(&[0.0, 1.0], &[0.0, 1.0])).abs() < 1e-15);
    }

    #[test]
    fn js_of_identical_is_zero() {
        let p = [0.1, 0.2, 0.7];
        assert!(js_divergence(&p, &p).abs() < 1e-15);
    }

    #[test]
    fn js_of_disjoint_is_ln2() {
        assert!((js_divergence(&[1.0, 0.0], &[0.0, 1.0]) - LN2).abs() < 1e-12);
    }

    #[test]
    fn js_is_symmetric() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.3, 0.6];
        assert!((js_divergence(&p, &q) - js_divergence(&q, &p)).abs() < 1e-15);
    }

    #[test]
    fn js_orders_by_distribution_difference() {
        let base = [0.5, 0.5];
        let near = [0.55, 0.45];
        let far = [0.95, 0.05];
        assert!(js_divergence(&base, &far) > js_divergence(&base, &near));
    }

    #[test]
    fn continuous_js_of_identical_gaussians_is_zero() {
        let pdf = |x: f64| (-0.5 * x * x).exp();
        let d = js_divergence_continuous(pdf, pdf, -5.0, 5.0, 200);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn continuous_js_of_separated_gaussians_approaches_ln2() {
        let p = |x: f64| (-0.5 * (x - 10.0) * (x - 10.0)).exp();
        let q = |x: f64| (-0.5 * (x + 10.0) * (x + 10.0)).exp();
        let d = js_divergence_continuous(p, q, -20.0, 20.0, 1000);
        assert!((d - LN2).abs() < 1e-6, "d = {d}");
    }

    #[test]
    fn continuous_js_handles_zero_density() {
        let zero = |_x: f64| 0.0;
        let d = js_divergence_continuous(zero, zero, 0.0, 1.0, 10);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal support")]
    fn mismatched_lengths_panic() {
        let _ = js_divergence(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn hellinger_of_identical_is_zero() {
        let p = [0.3, 0.3, 0.4];
        assert!(hellinger(&p, &p).abs() < 1e-15);
    }

    #[test]
    fn hellinger_of_disjoint_is_one() {
        assert!((hellinger(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_variation_known_values() {
        assert!(total_variation(&[0.5, 0.5], &[0.5, 0.5]).abs() < 1e-15);
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-15);
        assert!((total_variation(&[0.7, 0.3], &[0.3, 0.7]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn measures_agree_on_ordering() {
        // All three should rank "far" above "near" relative to the base.
        let base = [0.5, 0.5];
        let near = [0.55, 0.45];
        let far = [0.9, 0.1];
        for f in [
            js_divergence as fn(&[f64], &[f64]) -> f64,
            hellinger,
            total_variation,
        ] {
            assert!(f(&base, &far) > f(&base, &near));
        }
    }

    fn arb_dist(n: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(0.01f64..1.0, n).prop_map(|mut v| {
            let s: f64 = v.iter().sum();
            for x in v.iter_mut() {
                *x /= s;
            }
            v
        })
    }

    proptest! {
        #[test]
        fn js_bounded_by_ln2((p, q) in (2usize..12).prop_flat_map(|n| (arb_dist(n), arb_dist(n)))) {
            let d = js_divergence(&p, &q);
            prop_assert!(d >= -1e-12);
            prop_assert!(d <= LN2 + 1e-9);
        }

        #[test]
        fn kl_nonnegative_on_shared_support(
            (p, q) in (2usize..12).prop_flat_map(|n| (arb_dist(n), arb_dist(n)))
        ) {
            prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        }

        #[test]
        fn js_symmetry_property(
            (p, q) in (2usize..12).prop_flat_map(|n| (arb_dist(n), arb_dist(n)))
        ) {
            prop_assert!((js_divergence(&p, &q) - js_divergence(&q, &p)).abs() < 1e-12);
        }

        #[test]
        fn hellinger_and_tv_are_bounded_metrics(
            (p, q) in (2usize..12).prop_flat_map(|n| (arb_dist(n), arb_dist(n)))
        ) {
            for f in [hellinger as fn(&[f64], &[f64]) -> f64, total_variation] {
                let d = f(&p, &q);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
                prop_assert!((f(&p, &q) - f(&q, &p)).abs() < 1e-12); // symmetry
                prop_assert!(f(&p, &p).abs() < 1e-12); // identity
            }
        }

        #[test]
        fn hellinger_squared_bounds_tv_from_below(
            (p, q) in (2usize..12).prop_flat_map(|n| (arb_dist(n), arb_dist(n)))
        ) {
            // Standard inequality: H² ≤ TV ≤ H·√2.
            let h = hellinger(&p, &q);
            let tv = total_variation(&p, &q);
            prop_assert!(h * h <= tv + 1e-9);
            prop_assert!(tv <= h * std::f64::consts::SQRT_2 + 1e-9);
        }
    }
}
