//! Smoothed categorical histograms.
//!
//! For a **discrete** tunable parameter the paper estimates the good/bad
//! densities `p_g(x_i)` and `p_b(x_i)` "using histograms" over the observed
//! values (§III-B.1). A raw histogram assigns probability zero to any value
//! never observed in a class, which would make the expected-improvement
//! ratio `p_g/p_b` degenerate (0/0 or x/0). [`SmoothedHistogram`] therefore
//! applies additive (Laplace) smoothing with a configurable pseudo-count,
//! exactly as reference TPE implementations do for categorical dimensions.

use serde::{Deserialize, Serialize};

/// A categorical probability mass function over `{0, 1, …, n_categories-1}`
/// estimated from observed counts with additive smoothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmoothedHistogram {
    counts: Vec<f64>,
    total: f64,
    pseudo_count: f64,
}

impl SmoothedHistogram {
    /// Creates an empty histogram over `n_categories` values with the given
    /// Laplace `pseudo_count`. A positive pseudo-count keeps the pmf
    /// strictly positive; `0` disables smoothing, so unseen categories get
    /// probability exactly zero and downstream density *ratios* may be
    /// non-finite — consumers that allow a zero pseudo-count must tolerate
    /// `-inf`/NaN in log space (see the NaN guards in the tuner's ranking).
    ///
    /// # Panics
    /// Panics if `n_categories == 0` or `pseudo_count` is negative or NaN.
    pub fn new(n_categories: usize, pseudo_count: f64) -> Self {
        assert!(n_categories > 0, "histogram needs at least one category");
        assert!(
            pseudo_count >= 0.0,
            "pseudo-count must be non-negative and not NaN"
        );
        Self {
            counts: vec![0.0; n_categories],
            total: 0.0,
            pseudo_count,
        }
    }

    /// Builds a histogram from observed category indices.
    pub fn from_observations(n_categories: usize, pseudo_count: f64, obs: &[usize]) -> Self {
        let mut h = Self::new(n_categories, pseudo_count);
        for &o in obs {
            h.observe(o);
        }
        h
    }

    /// Records one observation of category `index`, with unit weight.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn observe(&mut self, index: usize) {
        self.observe_weighted(index, 1.0);
    }

    /// Records a weighted observation. Weights are used by the transfer-
    /// learning mixture (paper eqs. 9–10), where source-domain observations
    /// contribute with weight `w`.
    pub fn observe_weighted(&mut self, index: usize, weight: f64) {
        assert!(index < self.counts.len(), "category index out of range");
        assert!(weight >= 0.0, "negative observation weight");
        self.counts[index] += weight;
        self.total += weight;
    }

    /// Removes one previously recorded unit-weight observation of category
    /// `index` — the inverse of [`SmoothedHistogram::observe`], used by the
    /// incremental surrogate engine when an observation migrates between the
    /// good and bad histograms or a constant-liar fantasy is undone.
    ///
    /// # Panics
    /// Panics if `index` is out of range or the category holds less than
    /// unit weight.
    pub fn unobserve(&mut self, index: usize) {
        self.unobserve_weighted(index, 1.0);
    }

    /// Removes a weighted observation. With the integer weights the surrogate
    /// uses, `observe_weighted` followed by `unobserve_weighted` restores the
    /// previous counts **bit-exactly** (f64 add/sub of exact integers is
    /// exact); fractional weights may reintroduce rounding and are only
    /// approximately undone.
    ///
    /// # Panics
    /// Panics if `index` is out of range, `weight` is negative or NaN, or
    /// more weight would be removed than the category holds.
    pub fn unobserve_weighted(&mut self, index: usize, weight: f64) {
        assert!(index < self.counts.len(), "category index out of range");
        assert!(weight >= 0.0, "negative observation weight");
        assert!(
            self.counts[index] >= weight,
            "unobserving more weight than category {index} holds"
        );
        self.counts[index] -= weight;
        self.total -= weight;
    }

    /// Probability mass of category `index` under Laplace smoothing:
    /// `(count + pseudo) / (total + n * pseudo)`.
    pub fn pmf(&self, index: usize) -> f64 {
        assert!(index < self.counts.len(), "category index out of range");
        let n = self.counts.len() as f64;
        (self.counts[index] + self.pseudo_count) / (self.total + n * self.pseudo_count)
    }

    /// The full pmf as a vector (sums to 1).
    pub fn pmf_vec(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.pmf(i)).collect()
    }

    /// Number of categories.
    pub fn n_categories(&self) -> usize {
        self.counts.len()
    }

    /// Total observed weight (excluding pseudo-counts).
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Raw (unsmoothed) count of a category.
    pub fn count(&self, index: usize) -> f64 {
        self.counts[index]
    }

    /// Returns a new histogram equal to `w * prior + self`, the weighted
    /// mixture of paper eqs. (9)–(10): prior (source-domain) counts are
    /// scaled by `w` and added to the target-domain counts.
    ///
    /// # Panics
    /// Panics if the two histograms have different numbers of categories.
    pub fn with_prior(&self, prior: &SmoothedHistogram, w: f64) -> SmoothedHistogram {
        assert_eq!(
            self.counts.len(),
            prior.counts.len(),
            "prior histogram must cover the same categories"
        );
        assert!(w >= 0.0, "prior weight must be non-negative");
        let counts: Vec<f64> = self
            .counts
            .iter()
            .zip(&prior.counts)
            .map(|(&c, &p)| c + w * p)
            .collect();
        let total = self.total + w * prior.total;
        SmoothedHistogram {
            counts,
            total,
            pseudo_count: self.pseudo_count,
        }
    }

    /// Samples a category index proportionally to the smoothed pmf.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen_range(0.0..1.0);
        for i in 0..self.counts.len() {
            let p = self.pmf(i);
            if u < p {
                return i;
            }
            u -= p;
        }
        self.counts.len() - 1 // floating-point slack lands on the last bin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "at least one category")]
    fn zero_categories_panics() {
        let _ = SmoothedHistogram::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "pseudo-count must be non-negative")]
    fn negative_pseudo_count_panics() {
        let _ = SmoothedHistogram::new(3, -0.5);
    }

    #[test]
    fn zero_pseudo_count_disables_smoothing() {
        let h = SmoothedHistogram::from_observations(3, 0.0, &[0, 0, 1]);
        assert!((h.pmf(0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.pmf(2), 0.0, "unseen category gets zero mass");
    }

    #[test]
    fn empty_histogram_is_uniform() {
        let h = SmoothedHistogram::new(4, 1.0);
        for i in 0..4 {
            assert!((h.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_reflects_counts() {
        let h = SmoothedHistogram::from_observations(3, 1.0, &[0, 0, 0, 1]);
        // counts = [3,1,0], total 4, smoothed: (3+1)/7, (1+1)/7, (0+1)/7
        assert!((h.pmf(0) - 4.0 / 7.0).abs() < 1e-12);
        assert!((h.pmf(1) - 2.0 / 7.0).abs() < 1e-12);
        assert!((h.pmf(2) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn unobserved_category_has_positive_mass() {
        let h = SmoothedHistogram::from_observations(5, 0.5, &[2, 2, 2]);
        for i in 0..5 {
            assert!(h.pmf(i) > 0.0);
        }
    }

    #[test]
    fn weighted_observations() {
        let mut h = SmoothedHistogram::new(2, 1.0);
        h.observe_weighted(0, 3.0);
        h.observe_weighted(1, 1.0);
        assert!((h.pmf(0) - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.total_weight(), 4.0);
    }

    #[test]
    fn prior_mixture_matches_manual_computation() {
        let target = SmoothedHistogram::from_observations(2, 1.0, &[0]);
        let source = SmoothedHistogram::from_observations(2, 1.0, &[1, 1]);
        let mixed = target.with_prior(&source, 0.5);
        // counts = [1 + 0.5*0, 0 + 0.5*2] = [1, 1], total 2
        assert!((mixed.pmf(0) - 0.5).abs() < 1e-12);
        assert!((mixed.pmf(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prior_with_zero_weight_is_identity() {
        let target = SmoothedHistogram::from_observations(3, 1.0, &[0, 1, 1]);
        let source = SmoothedHistogram::from_observations(3, 1.0, &[2, 2, 2, 2]);
        let mixed = target.with_prior(&source, 0.0);
        for i in 0..3 {
            assert_eq!(mixed.pmf(i), target.pmf(i));
        }
    }

    #[test]
    #[should_panic(expected = "same categories")]
    fn prior_with_mismatched_categories_panics() {
        let a = SmoothedHistogram::new(2, 1.0);
        let b = SmoothedHistogram::new(3, 1.0);
        let _ = a.with_prior(&b, 1.0);
    }

    #[test]
    fn sampling_respects_distribution() {
        let h = SmoothedHistogram::from_observations(2, 0.01, &[0; 99]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let hits = (0..1000).filter(|_| h.sample(&mut rng) == 0).count();
        assert!(
            hits > 950,
            "expected ~99% of samples in category 0, got {hits}"
        );
    }

    #[test]
    fn unobserve_is_bit_exact_inverse_of_observe() {
        let mut h = SmoothedHistogram::from_observations(4, 1.0, &[0, 1, 1, 3]);
        let before: Vec<u64> = (0..4).map(|i| h.pmf(i).to_bits()).collect();
        let total_before = h.total_weight().to_bits();
        h.observe(2);
        h.observe(0);
        h.unobserve(0);
        h.unobserve(2);
        let after: Vec<u64> = (0..4).map(|i| h.pmf(i).to_bits()).collect();
        assert_eq!(before, after);
        assert_eq!(h.total_weight().to_bits(), total_before);
    }

    #[test]
    #[should_panic(expected = "more weight")]
    fn unobserving_an_empty_category_panics() {
        let mut h = SmoothedHistogram::new(2, 1.0);
        h.unobserve(0);
    }

    proptest! {
        #[test]
        fn observe_unobserve_sequences_restore_bits(
            n in 1usize..8,
            obs in proptest::collection::vec(0usize..8, 1..40),
        ) {
            let obs: Vec<usize> = obs.into_iter().map(|o| o % n).collect();
            let mut h = SmoothedHistogram::from_observations(n, 0.5, &obs);
            let snapshot: Vec<u64> = (0..n).map(|i| h.count(i).to_bits()).collect();
            let total = h.total_weight().to_bits();
            // Apply the same observations again, then undo them in reverse.
            for &o in &obs {
                h.observe(o);
            }
            for &o in obs.iter().rev() {
                h.unobserve(o);
            }
            let restored: Vec<u64> = (0..n).map(|i| h.count(i).to_bits()).collect();
            prop_assert_eq!(snapshot, restored);
            prop_assert_eq!(h.total_weight().to_bits(), total);
        }

        #[test]
        fn pmf_sums_to_one(
            n in 1usize..20,
            obs in proptest::collection::vec(0usize..20, 0..100),
            pseudo in 0.01f64..10.0,
        ) {
            let obs: Vec<usize> = obs.into_iter().map(|o| o % n).collect();
            let h = SmoothedHistogram::from_observations(n, pseudo, &obs);
            let sum: f64 = h.pmf_vec().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }

        #[test]
        fn more_observations_increase_mass(
            n in 2usize..10,
            k in 1usize..50,
        ) {
            let obs = vec![0usize; k];
            let h = SmoothedHistogram::from_observations(n, 1.0, &obs);
            prop_assert!(h.pmf(0) > h.pmf(1));
        }

        #[test]
        fn sample_is_in_range(
            n in 1usize..10,
            seed in 0u64..1000,
        ) {
            let h = SmoothedHistogram::new(n, 1.0);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let s = h.sample(&mut rng);
            prop_assert!(s < n);
        }
    }
}
