//! Gaussian kernel density estimation.
//!
//! For **continuous** tunable parameters the paper estimates the good/bad
//! densities with KDE using "gaussian kernels with a fixed bandwidth"
//! (§III-B.2). [`GaussianKde`] implements exactly that, plus Silverman's
//! rule-of-thumb bandwidth for callers that do not want to pick one, and
//! sampling from the estimated density — required by the *Proposal*
//! selection strategy (§III-D), which draws candidate configurations from
//! `p_g(x)`.

use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Bandwidth selection policy for [`GaussianKde`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bandwidth {
    /// A fixed bandwidth, as used in the paper's implementation.
    Fixed(f64),
    /// Silverman's rule of thumb: `0.9 · min(σ, IQR/1.34) · n^(-1/5)`,
    /// clamped below by a small floor so degenerate samples stay usable.
    Silverman,
}

/// A one-dimensional Gaussian kernel density estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianKde {
    points: Vec<f64>,
    weights: Vec<f64>,
    total_weight: f64,
    bandwidth: f64,
}

impl GaussianKde {
    /// Fits a KDE to `points` with equal weights.
    ///
    /// # Panics
    /// Panics if `points` is empty, or `Bandwidth::Fixed` is non-positive.
    pub fn fit(points: &[f64], bandwidth: Bandwidth) -> Self {
        Self::fit_weighted(points, &vec![1.0; points.len()], bandwidth)
    }

    /// Fits a KDE with per-point weights. Weights let the transfer-learning
    /// mixture (paper eqs. 9–10) down-weight source-domain observations.
    ///
    /// # Panics
    /// Panics if `points` is empty, lengths differ, any weight is negative,
    /// or all weights are zero.
    pub fn fit_weighted(points: &[f64], weights: &[f64], bandwidth: Bandwidth) -> Self {
        assert!(!points.is_empty(), "KDE requires at least one point");
        assert_eq!(
            points.len(),
            weights.len(),
            "points/weights length mismatch"
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "KDE weights must be non-negative"
        );
        let total_weight: f64 = weights.iter().sum();
        assert!(total_weight > 0.0, "KDE needs positive total weight");

        let bw = match bandwidth {
            Bandwidth::Fixed(h) => {
                assert!(h > 0.0, "fixed bandwidth must be positive");
                h
            }
            Bandwidth::Silverman => silverman_bandwidth(points),
        };
        Self {
            points: points.to_vec(),
            weights: weights.to_vec(),
            total_weight,
            bandwidth: bw,
        }
    }

    /// Evaluates the density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let mut acc = 0.0;
        for (&p, &w) in self.points.iter().zip(&self.weights) {
            let z = (x - p) / h;
            acc += w * (-0.5 * z * z).exp();
        }
        acc * INV_SQRT_2PI / (self.total_weight * h)
    }

    /// Evaluates the log-density at `x` (useful for products over many
    /// parameters without underflow).
    ///
    /// Computed by log-sum-exp over the kernel log-densities rather than
    /// `ln(pdf(x))`: `pdf(x)` underflows to 0 beyond `z ≈ 38` bandwidths,
    /// which would floor every far-tail candidate at the same value and
    /// collapse EI ranking among them. With LSE the result stays exact (and
    /// distance-ordered) out to `z ≈ 1e154`. Returns `-inf` only when the
    /// density is a true zero in exact arithmetic (e.g. `x = ±inf`).
    pub fn log_pdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        // Terms of ln Σ w_i · exp(-z_i²/2): t_i = ln(w_i) - z_i²/2.
        // Pass 1: the max term anchors the exponent rescaling.
        let mut max_t = f64::NEG_INFINITY;
        for (&p, &w) in self.points.iter().zip(&self.weights) {
            if w == 0.0 {
                continue;
            }
            let z = (x - p) / h;
            let t = w.ln() - 0.5 * z * z;
            if t > max_t {
                max_t = t;
            }
        }
        if !max_t.is_finite() {
            // Every term is -inf (x infinite, or all usable weights zero):
            // the density is zero everywhere we can resolve.
            return f64::NEG_INFINITY;
        }
        // Pass 2: Σ exp(t_i - max_t) ∈ [1, n], so the ln is exact.
        let mut acc = 0.0;
        for (&p, &w) in self.points.iter().zip(&self.weights) {
            if w == 0.0 {
                continue;
            }
            let z = (x - p) / h;
            acc += ((w.ln() - 0.5 * z * z) - max_t).exp();
        }
        max_t + acc.ln() + INV_SQRT_2PI.ln() - (self.total_weight * h).ln()
    }

    /// Evaluates the log-density at every point of `xs`, writing into
    /// `out`. Bit-identical to calling [`GaussianKde::log_pdf`] per point.
    ///
    /// The batch form hoists the candidate-independent work out of the
    /// per-candidate loop — `ln(w_i)` per kernel, the normalizer
    /// `ln(W·h)`, and the zero-weight filter — and stores the pass-1 terms
    /// `t_i = ln(w_i) - z_i²/2` so pass 2 reuses them instead of
    /// recomputing. Every floating-point expression the scalar path
    /// evaluates per candidate is kept in the same form and the same
    /// left-to-right order (the stored `t_i` round-trips exactly; `ln` of
    /// the same input is deterministic), so each `out[c]` carries the same
    /// bits `log_pdf(xs[c])` would.
    ///
    /// # Panics
    /// Panics if `xs` and `out` differ in length.
    pub fn log_pdf_batch(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "xs/out length mismatch");
        let h = self.bandwidth;
        let log_norm_num = INV_SQRT_2PI.ln();
        let log_norm_den = (self.total_weight * h).ln();
        let kernels: Vec<(f64, f64)> = self
            .points
            .iter()
            .zip(&self.weights)
            .filter(|&(_, &w)| w != 0.0)
            .map(|(&p, &w)| (p, w.ln()))
            .collect();
        let mut terms = vec![0.0f64; kernels.len()];
        for (&x, o) in xs.iter().zip(out.iter_mut()) {
            let mut max_t = f64::NEG_INFINITY;
            for (&(p, ln_w), t) in kernels.iter().zip(terms.iter_mut()) {
                let z = (x - p) / h;
                let term = ln_w - 0.5 * z * z;
                *t = term;
                if term > max_t {
                    max_t = term;
                }
            }
            if !max_t.is_finite() {
                *o = f64::NEG_INFINITY;
                continue;
            }
            let mut acc = 0.0;
            for &t in &terms {
                acc += (t - max_t).exp();
            }
            *o = max_t + acc.ln() + log_norm_num - log_norm_den;
        }
    }

    /// Draws one sample: pick a kernel center proportionally to its weight,
    /// then add Gaussian noise of the bandwidth scale.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut u: f64 = rng.gen_range(0.0..self.total_weight);
        let mut center = *self.points.last().expect("non-empty");
        for (&p, &w) in self.points.iter().zip(&self.weights) {
            if u < w {
                center = p;
                break;
            }
            u -= w;
        }
        let normal = Normal::new(center, self.bandwidth).expect("positive bandwidth");
        normal.sample(rng)
    }

    /// Inserts a kernel center at storage position `at`, shifting later
    /// points right — the delta counterpart of re-fitting with the point
    /// spliced into the input slice at the same position.
    ///
    /// The total weight is recomputed by a full left-to-right re-sum so it
    /// stays **bit-identical** to what [`GaussianKde::fit_weighted`] would
    /// compute on the resulting point/weight vectors; [`GaussianKde::log_pdf`]
    /// iterates in storage order, so an incrementally maintained KDE whose
    /// vectors match a from-scratch fit evaluates to identical bits.
    ///
    /// # Panics
    /// Panics if `at > len()` or `weight` is negative or NaN.
    pub fn insert_point(&mut self, at: usize, point: f64, weight: f64) {
        assert!(at <= self.points.len(), "insertion position out of range");
        assert!(weight >= 0.0, "KDE weights must be non-negative");
        self.points.insert(at, point);
        self.weights.insert(at, weight);
        self.total_weight = self.weights.iter().sum();
    }

    /// Removes the kernel center at storage position `at`, returning the
    /// `(point, weight)` pair. The total weight is re-summed as in
    /// [`GaussianKde::insert_point`].
    ///
    /// Removing the last center leaves an empty estimate whose densities are
    /// undefined (`fit_weighted` rejects that state); callers maintaining a
    /// KDE incrementally must drop or refill an emptied instance before
    /// evaluating it.
    ///
    /// # Panics
    /// Panics if `at >= len()`.
    pub fn remove_point(&mut self, at: usize) -> (f64, f64) {
        assert!(at < self.points.len(), "removal position out of range");
        let p = self.points.remove(at);
        let w = self.weights.remove(at);
        self.total_weight = self.weights.iter().sum();
        (p, w)
    }

    /// The kernel centers in storage order.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// The per-center weights in storage order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total weight (the normalizing constant of the mixture).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The bandwidth in use (after rule-of-thumb resolution).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of kernel centers.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the KDE has no kernel centers (never true for a constructed
    /// instance; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Silverman's rule-of-thumb bandwidth with an IQR correction and a floor.
pub fn silverman_bandwidth(points: &[f64]) -> f64 {
    assert!(!points.is_empty());
    let n = points.len() as f64;
    let mean = points.iter().sum::<f64>() / n;
    let var = points.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
    let std = var.sqrt();

    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in KDE input"));
    let iqr = crate::quantile::quantile_sorted(&sorted, 0.75)
        - crate::quantile::quantile_sorted(&sorted, 0.25);

    let spread = if iqr > 0.0 { std.min(iqr / 1.34) } else { std };
    let h = 0.9 * spread * n.powf(-0.2);
    // Floor: degenerate samples (all identical) still need a usable kernel.
    let scale = sorted.last().unwrap().abs().max(1.0);
    h.max(1e-3 * scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_points_panics() {
        let _ = GaussianKde::fit(&[], Bandwidth::Fixed(1.0));
    }

    #[test]
    #[should_panic(expected = "fixed bandwidth must be positive")]
    fn non_positive_bandwidth_panics() {
        let _ = GaussianKde::fit(&[1.0], Bandwidth::Fixed(0.0));
    }

    #[test]
    fn single_point_is_a_gaussian() {
        let kde = GaussianKde::fit(&[0.0], Bandwidth::Fixed(1.0));
        // peak density of N(0,1) is 1/sqrt(2*pi)
        assert!((kde.pdf(0.0) - INV_SQRT_2PI).abs() < 1e-12);
        assert!(kde.pdf(1.0) < kde.pdf(0.0));
        assert!((kde.pdf(1.0) - kde.pdf(-1.0)).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one() {
        let kde = GaussianKde::fit(&[0.0, 1.0, 5.0, 5.5], Bandwidth::Fixed(0.5));
        // trapezoid rule over a wide interval
        let (lo, hi, n) = (-10.0, 16.0, 20_000);
        let dx = (hi - lo) / n as f64;
        let mut integral = 0.0;
        for i in 0..=n {
            let x = lo + i as f64 * dx;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            integral += w * kde.pdf(x) * dx;
        }
        assert!((integral - 1.0).abs() < 1e-4, "integral = {integral}");
    }

    #[test]
    fn density_is_higher_near_data() {
        let kde = GaussianKde::fit(&[2.0, 2.1, 1.9, 2.05], Bandwidth::Fixed(0.2));
        assert!(kde.pdf(2.0) > kde.pdf(0.0));
        assert!(kde.pdf(2.0) > kde.pdf(4.0));
    }

    #[test]
    fn weights_shift_the_density() {
        let kde = GaussianKde::fit_weighted(&[0.0, 10.0], &[9.0, 1.0], Bandwidth::Fixed(1.0));
        assert!(kde.pdf(0.0) > 5.0 * kde.pdf(10.0));
    }

    #[test]
    fn silverman_handles_identical_points() {
        let kde = GaussianKde::fit(&[3.0, 3.0, 3.0], Bandwidth::Silverman);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.pdf(3.0).is_finite());
    }

    #[test]
    fn silverman_scales_down_with_n() {
        let few: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let many: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(silverman_bandwidth(&many) < silverman_bandwidth(&few));
    }

    #[test]
    fn samples_concentrate_near_kernels() {
        let kde = GaussianKde::fit(&[5.0], Bandwidth::Fixed(0.1));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let samples: Vec<f64> = (0..1000).map(|_| kde.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_kernels() {
        let kde = GaussianKde::fit_weighted(&[0.0, 100.0], &[99.0, 1.0], Bandwidth::Fixed(0.1));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let near_zero = (0..1000)
            .map(|_| kde.sample(&mut rng))
            .filter(|&s| s < 50.0)
            .count();
        assert!(near_zero > 950, "{near_zero} / 1000 near the heavy kernel");
    }

    #[test]
    fn log_pdf_is_finite_far_from_data() {
        let kde = GaussianKde::fit(&[0.0], Bandwidth::Fixed(0.01));
        assert!(kde.log_pdf(1e6).is_finite());
    }

    // Regression: `log_pdf` used to compute `ln(pdf(x))`, which underflows
    // to `ln(MIN_POSITIVE)` for any point beyond ~38 bandwidths — all
    // far-tail candidates collapsed to the same log-density and EI could no
    // longer rank them. LSE keeps them in distance order.
    #[test]
    fn log_pdf_ranks_far_points_in_distance_order() {
        let kde = GaussianKde::fit(&[0.0], Bandwidth::Fixed(1.0));
        // Both of these underflow pdf() to exactly 0.0.
        assert_eq!(kde.pdf(50.0), 0.0);
        assert_eq!(kde.pdf(60.0), 0.0);
        let near = kde.log_pdf(50.0);
        let far = kde.log_pdf(60.0);
        assert!(near.is_finite() && far.is_finite());
        assert!(
            near > far,
            "closer point must have higher log-density: {near} vs {far}"
        );
        // And the values are the analytic ones, not a floor.
        let expect = |z: f64| -0.5 * z * z + INV_SQRT_2PI.ln();
        assert!((near - expect(50.0)).abs() < 1e-9);
        assert!((far - expect(60.0)).abs() < 1e-9);
    }

    #[test]
    fn log_pdf_matches_ln_pdf_where_pdf_is_healthy() {
        let kde = GaussianKde::fit_weighted(
            &[0.0, 1.0, 5.0, 5.5],
            &[1.0, 2.0, 0.5, 1.5],
            Bandwidth::Fixed(0.5),
        );
        for x in [-2.0, 0.0, 0.7, 3.0, 5.2, 8.0] {
            let direct = kde.pdf(x).ln();
            let lse = kde.log_pdf(x);
            assert!((direct - lse).abs() < 1e-12, "x={x}: {direct} vs {lse}");
        }
    }

    #[test]
    fn log_pdf_skips_zero_weight_kernels() {
        // A zero-weight kernel at the query point must not contribute
        // (ln(0) would poison the max pass).
        let kde = GaussianKde::fit_weighted(&[0.0, 10.0], &[0.0, 1.0], Bandwidth::Fixed(1.0));
        let at_dead_kernel = kde.log_pdf(0.0);
        assert!(at_dead_kernel.is_finite());
        let expect = -0.5 * 100.0 + INV_SQRT_2PI.ln();
        assert!((at_dead_kernel - expect).abs() < 1e-9);
    }

    #[test]
    fn log_pdf_at_infinity_is_neg_infinity() {
        let kde = GaussianKde::fit(&[0.0, 1.0], Bandwidth::Fixed(1.0));
        assert_eq!(kde.log_pdf(f64::INFINITY), f64::NEG_INFINITY);
        assert_eq!(kde.log_pdf(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn log_pdf_batch_matches_scalar_bitwise() {
        let kde = GaussianKde::fit_weighted(
            &[0.0, 1.0, 5.0, 5.5],
            &[1.0, 2.0, 0.5, 1.5],
            Bandwidth::Fixed(0.5),
        );
        let xs = [-2.0, 0.0, 0.7, 3.0, 5.2, 8.0, 1e6, -1e6];
        let mut out = vec![0.0; xs.len()];
        kde.log_pdf_batch(&xs, &mut out);
        for (&x, &b) in xs.iter().zip(&out) {
            assert_eq!(kde.log_pdf(x).to_bits(), b.to_bits(), "x={x}");
        }
    }

    #[test]
    fn log_pdf_batch_handles_degenerate_inputs_like_scalar() {
        // Zero-weight kernels, infinite queries, NaN queries: every edge
        // the scalar path defines, bit for bit.
        let kde =
            GaussianKde::fit_weighted(&[0.0, 10.0, -3.0], &[0.0, 1.0, 2.0], Bandwidth::Fixed(1.0));
        let xs = [0.0, 10.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 1e300];
        let mut out = vec![0.0; xs.len()];
        kde.log_pdf_batch(&xs, &mut out);
        for (&x, &b) in xs.iter().zip(&out) {
            let s = kde.log_pdf(x);
            assert_eq!(s.to_bits(), b.to_bits(), "x={x}: scalar {s} vs batch {b}");
        }
    }

    #[test]
    fn log_pdf_batch_with_all_zero_usable_weights_is_neg_infinity() {
        // One positive weight keeps the fit constructible; zero it out via
        // insert/remove so every *usable* kernel has weight zero.
        let mut kde = GaussianKde::fit_weighted(&[0.0, 5.0], &[0.0, 1.0], Bandwidth::Fixed(1.0));
        kde.remove_point(1);
        kde.insert_point(1, 5.0, 0.0);
        // total_weight is now 0.0; the scalar path returns -inf for any x.
        let xs = [0.0, 5.0, 100.0];
        let mut out = vec![1.0; xs.len()];
        kde.log_pdf_batch(&xs, &mut out);
        for (&x, &b) in xs.iter().zip(&out) {
            assert_eq!(kde.log_pdf(x).to_bits(), b.to_bits(), "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn log_pdf_batch_rejects_mismatched_buffers() {
        let kde = GaussianKde::fit(&[0.0], Bandwidth::Fixed(1.0));
        let mut out = vec![0.0; 2];
        kde.log_pdf_batch(&[1.0], &mut out);
    }

    #[test]
    fn insert_point_matches_refit_bitwise() {
        let pts = [0.0, 1.0, 5.0];
        let wts = [1.0, 2.0, 1.0];
        let mut kde = GaussianKde::fit_weighted(&pts, &wts, Bandwidth::Fixed(0.5));
        kde.insert_point(1, 0.7, 1.0);
        let refit = GaussianKde::fit_weighted(
            &[0.0, 0.7, 1.0, 5.0],
            &[1.0, 1.0, 2.0, 1.0],
            Bandwidth::Fixed(0.5),
        );
        assert_eq!(kde.points(), refit.points());
        assert_eq!(kde.weights(), refit.weights());
        assert_eq!(kde.total_weight().to_bits(), refit.total_weight().to_bits());
        for x in [-1.0, 0.3, 0.7, 2.0, 10.0] {
            assert_eq!(kde.log_pdf(x).to_bits(), refit.log_pdf(x).to_bits());
        }
    }

    #[test]
    fn remove_point_undoes_insert_bitwise() {
        let pts = [2.0, 3.0, 4.0];
        let wts = [1.0, 1.0, 0.5];
        let mut kde = GaussianKde::fit_weighted(&pts, &wts, Bandwidth::Fixed(0.3));
        let snapshot: Vec<u64> = [-1.0, 2.5, 3.9]
            .iter()
            .map(|&x| kde.log_pdf(x).to_bits())
            .collect();
        kde.insert_point(2, 3.5, 1.0);
        let (p, w) = kde.remove_point(2);
        assert_eq!((p, w), (3.5, 1.0));
        let restored: Vec<u64> = [-1.0, 2.5, 3.9]
            .iter()
            .map(|&x| kde.log_pdf(x).to_bits())
            .collect();
        assert_eq!(snapshot, restored);
    }

    #[test]
    fn remove_point_can_empty_the_estimate() {
        let mut kde = GaussianKde::fit(&[1.0], Bandwidth::Fixed(1.0));
        kde.remove_point(0);
        assert!(kde.is_empty());
        assert_eq!(kde.len(), 0);
    }

    proptest! {
        #[test]
        fn incremental_edits_match_refit(
            pts in proptest::collection::vec(-20.0f64..20.0, 1..20),
            insert_at_frac in 0.0f64..1.0,
            new_pt in -20.0f64..20.0,
            x in -30.0f64..30.0,
        ) {
            let mut kde = GaussianKde::fit(&pts, Bandwidth::Fixed(0.4));
            let at = (insert_at_frac * pts.len() as f64) as usize;
            kde.insert_point(at, new_pt, 1.0);
            let mut spliced = pts.clone();
            spliced.insert(at, new_pt);
            let refit = GaussianKde::fit(&spliced, Bandwidth::Fixed(0.4));
            prop_assert_eq!(kde.log_pdf(x).to_bits(), refit.log_pdf(x).to_bits());
        }

        #[test]
        fn pdf_is_nonnegative_and_finite(
            pts in proptest::collection::vec(-100.0f64..100.0, 1..50),
            x in -200.0f64..200.0,
            h in 0.01f64..10.0,
        ) {
            let kde = GaussianKde::fit(&pts, Bandwidth::Fixed(h));
            let d = kde.pdf(x);
            prop_assert!(d >= 0.0);
            prop_assert!(d.is_finite());
        }

        #[test]
        fn pdf_is_translation_equivariant(
            pts in proptest::collection::vec(-50.0f64..50.0, 1..20),
            x in -50.0f64..50.0,
            shift in -10.0f64..10.0,
        ) {
            let kde = GaussianKde::fit(&pts, Bandwidth::Fixed(1.0));
            let shifted: Vec<f64> = pts.iter().map(|p| p + shift).collect();
            let kde2 = GaussianKde::fit(&shifted, Bandwidth::Fixed(1.0));
            prop_assert!((kde.pdf(x) - kde2.pdf(x + shift)).abs() < 1e-9);
        }

        #[test]
        fn log_pdf_batch_is_bit_identical_to_scalar(
            pts in proptest::collection::vec(-100.0f64..100.0, 1..40),
            wts_seed in proptest::collection::vec(0u8..4, 1..40),
            xs in proptest::collection::vec(-1e6f64..1e6, 0..64),
            h in 0.001f64..50.0,
        ) {
            // Weights in {0, 0.5, 1, 2} exercise the zero-weight skip path
            // alongside ordinary mixtures; keep at least one positive.
            let n = pts.len().min(wts_seed.len());
            let pts = &pts[..n];
            let mut wts: Vec<f64> = wts_seed[..n].iter().map(|&s| s as f64 * 0.5).collect();
            if wts.iter().all(|&w| w == 0.0) {
                wts[0] = 1.0;
            }
            let kde = GaussianKde::fit_weighted(pts, &wts, Bandwidth::Fixed(h));
            let mut out = vec![0.0; xs.len()];
            kde.log_pdf_batch(&xs, &mut out);
            for (&x, &b) in xs.iter().zip(&out) {
                prop_assert_eq!(kde.log_pdf(x).to_bits(), b.to_bits());
            }
        }

        #[test]
        fn silverman_is_positive(
            pts in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            prop_assert!(silverman_bandwidth(&pts) > 0.0);
        }
    }
}
