//! Statistics substrate for the HiPerBOt auto-tuning framework.
//!
//! This crate provides the probabilistic and numerical building blocks that
//! the Tree-Parzen-Estimator surrogate model, the GEIST baseline, and the
//! evaluation harness are built on:
//!
//! - [`histogram`] — smoothed categorical histograms used as the discrete
//!   per-parameter densities `p_g(x_i)` / `p_b(x_i)` of the paper (§III-B.1).
//! - [`kde`] — Gaussian kernel density estimation for continuous parameters
//!   (§III-B.2).
//! - [`quantile`] — the α-quantile threshold `y(τ)` that splits observations
//!   into *good* and *bad* (§II).
//! - [`order_stats`] — an order-statistics multiset (deterministic treap)
//!   that maintains the same α-quantile incrementally in O(log n) per
//!   observation, backing the incremental surrogate engine.
//! - [`divergence`] — Kullback–Leibler and Jensen–Shannon divergences used
//!   for the parameter-importance analysis (§VI, eqs. 13–14), plus the
//!   Hellinger and total-variation alternatives the ablations compare.
//! - [`correlation`] — Pearson/Spearman/Kendall coefficients used to score
//!   ranking agreement (Table I) and source/target relatedness (§VII).
//! - [`summary`] — streaming mean/variance (Welford) summaries used when the
//!   evaluation harness aggregates 50 repeated trials (§V).
//! - [`linalg`] — a small dense matrix library with Cholesky factorization,
//!   backing the Gaussian-process comparator and the PerfNet substrate.
//! - [`rng`] — deterministic seed-splitting so every experiment in the paper
//!   reproduction is exactly repeatable.
//!
//! Everything is implemented from scratch on top of `rand`; there are no
//! external numerics dependencies.

pub mod correlation;
pub mod divergence;
pub mod histogram;
pub mod kde;
pub mod linalg;
pub mod order_stats;
pub mod quantile;
pub mod rng;
pub mod summary;

pub use correlation::{kendall_tau, pearson, spearman};
pub use divergence::{
    hellinger, js_divergence, js_divergence_continuous, kl_divergence, total_variation,
};
pub use histogram::SmoothedHistogram;
pub use kde::GaussianKde;
pub use linalg::Matrix;
pub use order_stats::OrderStatMultiset;
pub use quantile::quantile;
pub use rng::SeedSequence;
pub use summary::Summary;
