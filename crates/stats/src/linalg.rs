//! Minimal dense linear algebra.
//!
//! Two consumers need matrices: the Gaussian-process comparator (kernel
//! matrices, Cholesky solves) and the PerfNet neural-network substrate
//! (dense layers). Neither needs more than row-major [`Matrix`] with
//! multiplication, transpose, and a Cholesky factorization — so that is all
//! this module provides, implemented with cache-friendly ikj loop order per
//! the HPC guides rather than pulling in an external BLAS.

use serde::{Deserialize, Serialize};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned by [`Matrix::cholesky`] when the input is not (numerically)
/// symmetric positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// The pivot column where factorization broke down.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (non-positive pivot at column {})",
            self.pivot
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · rhs` using the cache-friendly ikj ordering.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Returns `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Returns `self * s` (scalar scaling).
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower-triangular `L`.
    ///
    /// Only the lower triangle of `self` is read, so near-symmetric inputs
    /// (kernel matrices with rounding noise) are accepted.
    pub fn cholesky(&self) -> Result<Matrix, NotPositiveDefinite> {
        assert_eq!(self.rows, self.cols, "Cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = self[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(NotPositiveDefinite { pivot: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / ljj;
            }
        }
        Ok(l)
    }

    /// Solves `L·x = b` for lower-triangular `L` (forward substitution).
    pub fn solve_lower_triangular(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                s -= self[(i, j)] * xj;
            }
            x[i] = s / self[(i, i)];
        }
        x
    }

    /// Solves `Lᵀ·x = b` where `self` is lower-triangular `L` (backward
    /// substitution, without materializing the transpose).
    pub fn solve_lower_transposed(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = b[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                s -= self[(j, i)] * xj;
            }
            x[i] = s / self[(i, i)];
        }
        x
    }

    /// Solves `A·x = b` given `self = L` from [`Matrix::cholesky`], via the
    /// two triangular solves `L·y = b`, `Lᵀ·x = y`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower_triangular(b);
        self.solve_lower_transposed(&y)
    }

    /// log-determinant of `A` given `self = L`: `2·Σ ln L_ii`.
    pub fn cholesky_log_det(&self) -> f64 {
        (0..self.rows).map(|i| self[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_matmul_is_identity_op() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a), a);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn known_matmul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 2.0, 1.0, 3.0]);
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&v), vec![-2.0, 13.0]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L = [[2,0,0],[6,1,0],[-8,5,3]]
        let a = Matrix::from_vec(
            3,
            3,
            vec![4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0],
        );
        let l = a.cholesky().unwrap();
        let expected = [2.0, 0.0, 0.0, 6.0, 1.0, 0.0, -8.0, 5.0, 3.0];
        for (got, want) in l.as_slice().iter().zip(&expected) {
            assert!((got - want).abs() < 1e-12, "L = {:?}", l.as_slice());
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        let err = a.cholesky().unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn cholesky_solve_recovers_solution() {
        let a = Matrix::from_vec(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let l = a.cholesky().unwrap();
        let x = l.cholesky_solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 0.0, 0.0, 9.0]);
        let l = a.cholesky().unwrap();
        assert!((l.cholesky_log_det() - (36.0f64).ln()).abs() < 1e-12);
    }

    fn arb_spd(n: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |v| {
            let b = Matrix::from_vec(n, n, v);
            // B·Bᵀ + n·I is symmetric positive definite
            let mut a = b.matmul(&b.transpose());
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            a
        })
    }

    proptest! {
        #[test]
        fn cholesky_reconstructs(a in (1usize..8).prop_flat_map(arb_spd)) {
            let l = a.cholesky().unwrap();
            let recon = l.matmul(&l.transpose());
            let diff: f64 = a
                .as_slice()
                .iter()
                .zip(recon.as_slice())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            prop_assert!(diff < 1e-9, "max abs diff = {diff}");
        }

        #[test]
        fn cholesky_solve_satisfies_system(
            a in (1usize..8).prop_flat_map(arb_spd),
            bv in proptest::collection::vec(-10.0f64..10.0, 1..8),
        ) {
            let n = a.rows().min(bv.len());
            // regenerate consistent sizes
            let a = Matrix::from_fn(n, n, |i, j| a[(i.min(a.rows()-1), j.min(a.cols()-1))]);
            let a = {
                // re-SPD-ify after truncation
                let mut m = a.matmul(&a.transpose());
                for i in 0..n { m[(i, i)] += n as f64 + 1.0; }
                m
            };
            let b = &bv[..n];
            let l = a.cholesky().unwrap();
            let x = l.cholesky_solve(b);
            let ax = a.matvec(&x);
            for (got, want) in ax.iter().zip(b) {
                prop_assert!((got - want).abs() < 1e-6);
            }
        }

        #[test]
        fn matmul_is_associative(
            a in proptest::collection::vec(-2.0f64..2.0, 9),
            b in proptest::collection::vec(-2.0f64..2.0, 9),
            c in proptest::collection::vec(-2.0f64..2.0, 9),
        ) {
            let a = Matrix::from_vec(3, 3, a);
            let b = Matrix::from_vec(3, 3, b);
            let c = Matrix::from_vec(3, 3, c);
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            let diff: f64 = left
                .as_slice()
                .iter()
                .zip(right.as_slice())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            prop_assert!(diff < 1e-9);
        }

        #[test]
        fn transpose_reverses_matmul(
            a in proptest::collection::vec(-2.0f64..2.0, 6),
            b in proptest::collection::vec(-2.0f64..2.0, 6),
        ) {
            let a = Matrix::from_vec(2, 3, a);
            let b = Matrix::from_vec(3, 2, b);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            let diff: f64 = lhs
                .as_slice()
                .iter()
                .zip(rhs.as_slice())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            prop_assert!(diff < 1e-9);
        }
    }
}
