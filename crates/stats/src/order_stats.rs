//! Order-statistics multiset for incremental quantile maintenance.
//!
//! The incremental surrogate engine (hiperbot-core) must re-derive the
//! α-quantile good/bad threshold after every single observation without
//! re-sorting the whole history. [`OrderStatMultiset`] supports that with a
//! balanced search tree augmented with subtree sizes: `insert`/`remove` are
//! O(log n), `select(k)` returns the k-th smallest value in O(log n), and
//! [`OrderStatMultiset::quantile`] reproduces — **bit for bit** — the
//! Hyndman–Fan type-7 estimator of [`crate::quantile::quantile`] on the same
//! multiset (the interpolation arithmetic is written identically, and
//! `total_cmp`-equal f64 values share one bit pattern, so `select(k)` returns
//! the same bits the k-th slot of a sorted vector would hold).
//!
//! The tree is a treap whose priorities come from a *deterministic* hash of
//! the insertion index (SplitMix64), not an RNG: rebuilding the same multiset
//! always produces the same tree shape, so traversal order — and therefore
//! every downstream computation — is reproducible across runs and platforms.
//!
//! Values are totally ordered by `(f64::total_cmp, index)`; duplicate values
//! are kept as distinct entries. Range traversal prunes with *natural* `f64`
//! comparisons so that `-0.0`/`+0.0` — which `total_cmp` distinguishes but
//! `<` does not — never causes a candidate inside the requested closed range
//! to be skipped. NaN values are rejected; the observation history already
//! guarantees finite objectives.

/// Sentinel for "no child" in the node arena.
const NIL: u32 = u32::MAX;

/// SplitMix64 finalizer: a deterministic, well-mixed priority for treap
/// balancing keyed on the insertion index.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy)]
struct Node {
    value: f64,
    index: u32,
    prio: u64,
    left: u32,
    right: u32,
    size: u32,
}

/// A multiset of `(value, index)` pairs ordered by `(total_cmp, index)` with
/// O(log n) insert, remove, and rank selection.
///
/// `index` is the caller's identifier for the entry (the observation index in
/// the surrogate engine); it both disambiguates equal values and seeds the
/// deterministic treap priority.
#[derive(Debug, Clone, Default)]
pub struct OrderStatMultiset {
    nodes: Vec<Node>,
    root: u32,
    free: Vec<u32>,
    len: usize,
}

impl OrderStatMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the multiset holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn size(&self, t: u32) -> u32 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].size
        }
    }

    fn update(&mut self, t: u32) {
        let (l, r) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right)
        };
        self.nodes[t as usize].size = 1 + self.size(l) + self.size(r);
    }

    /// Key order: `(total_cmp value, index)` ascending.
    fn key_lt(a_val: f64, a_idx: u32, b_val: f64, b_idx: u32) -> bool {
        a_val.total_cmp(&b_val).then(a_idx.cmp(&b_idx)).is_lt()
    }

    /// Merges two treaps where every key in `l` precedes every key in `r`.
    fn merge(&mut self, l: u32, r: u32) -> u32 {
        if l == NIL {
            return r;
        }
        if r == NIL {
            return l;
        }
        if self.nodes[l as usize].prio >= self.nodes[r as usize].prio {
            let lr = self.nodes[l as usize].right;
            let m = self.merge(lr, r);
            self.nodes[l as usize].right = m;
            self.update(l);
            l
        } else {
            let rl = self.nodes[r as usize].left;
            let m = self.merge(l, rl);
            self.nodes[r as usize].left = m;
            self.update(r);
            r
        }
    }

    /// Splits `t` into `(keys < (value, index), keys >= (value, index))`.
    fn split(&mut self, t: u32, value: f64, index: u32) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        let (n_val, n_idx) = {
            let n = &self.nodes[t as usize];
            (n.value, n.index)
        };
        if Self::key_lt(n_val, n_idx, value, index) {
            let tr = self.nodes[t as usize].right;
            let (a, b) = self.split(tr, value, index);
            self.nodes[t as usize].right = a;
            self.update(t);
            (t, b)
        } else {
            let tl = self.nodes[t as usize].left;
            let (a, b) = self.split(tl, value, index);
            self.nodes[t as usize].left = b;
            self.update(t);
            (a, t)
        }
    }

    /// Inserts the entry `(value, index)`.
    ///
    /// # Panics
    /// Panics if `value` is NaN (the split threshold is undefined over NaN;
    /// callers filter failed measurements before they reach this structure).
    pub fn insert(&mut self, value: f64, index: u32) {
        assert!(!value.is_nan(), "NaN values cannot be rank-ordered");
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize] = Node {
                    value,
                    index,
                    prio: splitmix64(index as u64),
                    left: NIL,
                    right: NIL,
                    size: 1,
                };
                s
            }
            None => {
                let s = self.nodes.len() as u32;
                self.nodes.push(Node {
                    value,
                    index,
                    prio: splitmix64(index as u64),
                    left: NIL,
                    right: NIL,
                    size: 1,
                });
                s
            }
        };
        let root = self.root;
        let (l, r) = self.split(root, value, index);
        let lm = self.merge(l, slot);
        self.root = self.merge(lm, r);
        self.len += 1;
    }

    /// Removes the entry `(value, index)`.
    ///
    /// # Panics
    /// Panics if the entry is not present (bit-exact value match required).
    pub fn remove(&mut self, value: f64, index: u32) {
        let root = self.root;
        self.root = self.remove_rec(root, value, index);
        self.len -= 1;
    }

    fn remove_rec(&mut self, t: u32, value: f64, index: u32) -> u32 {
        assert!(t != NIL, "entry not found in order-statistics multiset");
        let (n_val, n_idx, n_left, n_right) = {
            let n = &self.nodes[t as usize];
            (n.value, n.index, n.left, n.right)
        };
        if n_val.to_bits() == value.to_bits() && n_idx == index {
            let m = self.merge(n_left, n_right);
            self.free.push(t);
            m
        } else if Self::key_lt(value, index, n_val, n_idx) {
            let m = self.remove_rec(n_left, value, index);
            self.nodes[t as usize].left = m;
            self.update(t);
            t
        } else {
            let m = self.remove_rec(n_right, value, index);
            self.nodes[t as usize].right = m;
            self.update(t);
            t
        }
    }

    /// Returns the `(value, index)` entry of rank `k` (0-based, ascending).
    ///
    /// # Panics
    /// Panics if `k >= len()`.
    pub fn select(&self, k: usize) -> (f64, u32) {
        assert!(k < self.len, "rank out of range");
        let mut t = self.root;
        let mut k = k as u32;
        loop {
            let n = &self.nodes[t as usize];
            let ls = self.size(n.left);
            if k < ls {
                t = n.left;
            } else if k == ls {
                return (n.value, n.index);
            } else {
                k -= ls + 1;
                t = n.right;
            }
        }
    }

    /// The smallest entry, or `None` when empty.
    pub fn min(&self) -> Option<(f64, u32)> {
        if self.is_empty() {
            None
        } else {
            Some(self.select(0))
        }
    }

    /// Visits every entry whose value lies in the **closed** interval
    /// `[lo, hi]` under natural `f64` comparison, in key order.
    ///
    /// Natural comparisons (not `total_cmp`) are used both for pruning and
    /// for the membership test so that `-0.0` and `+0.0` — distinct under
    /// `total_cmp` but equal under `<=` — are treated as one value.
    /// NaN bounds visit nothing (every comparison against NaN is false).
    pub fn for_each_in(&self, lo: f64, hi: f64, f: &mut impl FnMut(f64, u32)) {
        // NaN bounds are tolerated (they visit nothing); only a genuinely
        // inverted finite range is a caller bug.
        debug_assert!(
            lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Greater),
            "inverted range"
        );
        self.range_rec(self.root, lo, hi, f);
    }

    fn range_rec(&self, t: u32, lo: f64, hi: f64, f: &mut impl FnMut(f64, u32)) {
        if t == NIL {
            return;
        }
        let n = &self.nodes[t as usize];
        // Left subtree holds keys <= this node's key, so its values are
        // <= n.value; skip it only when even n.value is below the range.
        if n.value >= lo {
            self.range_rec(n.left, lo, hi, f);
        }
        if n.value >= lo && n.value <= hi {
            f(n.value, n.index);
        }
        if n.value <= hi {
            self.range_rec(n.right, lo, hi, f);
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the stored values by type-7 linear
    /// interpolation, bit-identical to [`crate::quantile::quantile`] over
    /// the same multiset of (non-NaN) values. Returns `None` when the
    /// multiset is empty or `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) || self.is_empty() {
            return None;
        }
        let n = self.len;
        if n == 1 {
            return Some(self.select(0).0);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        Some(if lo == hi {
            self.select(lo).0
        } else {
            let frac = pos - lo as f64;
            self.select(lo).0 * (1.0 - frac) + self.select(hi).0 * frac
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::quantile;
    use proptest::prelude::*;

    #[test]
    fn insert_select_remove_roundtrip() {
        let mut m = OrderStatMultiset::new();
        m.insert(3.0, 0);
        m.insert(1.0, 1);
        m.insert(2.0, 2);
        assert_eq!(m.len(), 3);
        assert_eq!(m.select(0), (1.0, 1));
        assert_eq!(m.select(1), (2.0, 2));
        assert_eq!(m.select(2), (3.0, 0));
        m.remove(2.0, 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.select(1), (3.0, 0));
    }

    #[test]
    fn duplicate_values_order_by_index() {
        let mut m = OrderStatMultiset::new();
        m.insert(5.0, 7);
        m.insert(5.0, 2);
        m.insert(5.0, 4);
        assert_eq!(m.select(0), (5.0, 2));
        assert_eq!(m.select(1), (5.0, 4));
        assert_eq!(m.select(2), (5.0, 7));
        assert_eq!(m.min(), Some((5.0, 2)));
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn removing_absent_entry_panics() {
        let mut m = OrderStatMultiset::new();
        m.insert(1.0, 0);
        m.remove(2.0, 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn inserting_nan_panics() {
        let mut m = OrderStatMultiset::new();
        m.insert(f64::NAN, 0);
    }

    #[test]
    fn range_visits_closed_interval_in_order() {
        let mut m = OrderStatMultiset::new();
        for (i, v) in [4.0, 1.0, 3.0, 2.0, 5.0].iter().enumerate() {
            m.insert(*v, i as u32);
        }
        let mut seen = Vec::new();
        m.for_each_in(2.0, 4.0, &mut |v, i| seen.push((v, i)));
        assert_eq!(seen, vec![(2.0, 3), (3.0, 2), (4.0, 0)]);
    }

    #[test]
    fn range_treats_signed_zeros_as_equal() {
        let mut m = OrderStatMultiset::new();
        m.insert(-0.0, 0);
        m.insert(0.0, 1);
        m.insert(1.0, 2);
        let mut seen = Vec::new();
        // Natural bound 0.0 must include the -0.0 entry even though
        // total_cmp orders -0.0 strictly below 0.0.
        m.for_each_in(0.0, 0.5, &mut |_, i| seen.push(i));
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn quantile_of_empty_or_bad_q_is_none() {
        let m = OrderStatMultiset::new();
        assert_eq!(m.quantile(0.5), None);
        let mut m = OrderStatMultiset::new();
        m.insert(1.0, 0);
        assert_eq!(m.quantile(-0.1), None);
        assert_eq!(m.quantile(1.1), None);
        assert_eq!(m.quantile(f64::NAN), None);
    }

    #[test]
    fn tree_shape_is_deterministic() {
        // Same multiset built in two different insertion orders must still
        // agree on every rank query (values are what matter; this also
        // exercises the free-list reuse path).
        let mut a = OrderStatMultiset::new();
        let mut b = OrderStatMultiset::new();
        for i in 0..50u32 {
            a.insert((i as f64 * 7.0) % 13.0, i);
        }
        for i in (0..50u32).rev() {
            b.insert((i as f64 * 7.0) % 13.0, i);
        }
        a.remove((3.0 * 7.0) % 13.0, 3);
        a.insert((3.0 * 7.0) % 13.0, 3);
        for k in 0..50 {
            assert_eq!(a.select(k), b.select(k));
        }
    }

    proptest! {
        #[test]
        fn matches_sorted_vector_oracle(
            ops in proptest::collection::vec((0f64..100.0, 0u8..2), 1..200),
        ) {
            let mut m = OrderStatMultiset::new();
            let mut oracle: Vec<(f64, u32)> = Vec::new();
            for (i, &(v, remove)) in ops.iter().enumerate() {
                if remove == 1 && !oracle.is_empty() {
                    let victim = oracle[i % oracle.len()];
                    m.remove(victim.0, victim.1);
                    oracle.retain(|&e| e != victim);
                } else {
                    m.insert(v, i as u32);
                    oracle.push((v, i as u32));
                }
                oracle.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                prop_assert_eq!(m.len(), oracle.len());
                for (k, &e) in oracle.iter().enumerate() {
                    prop_assert_eq!(m.select(k), e);
                }
            }
        }

        #[test]
        fn quantile_matches_sort_based_estimator_bitwise(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..120),
            q in 0.0f64..1.0,
        ) {
            let mut m = OrderStatMultiset::new();
            for (i, &x) in xs.iter().enumerate() {
                m.insert(x, i as u32);
            }
            let a = m.quantile(q).unwrap();
            let b = quantile(&xs, q).unwrap();
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        #[test]
        fn range_matches_filter_oracle(
            xs in proptest::collection::vec(-50f64..50.0, 1..100),
            lo in -60f64..60.0,
            span in 0f64..40.0,
        ) {
            let hi = lo + span;
            let mut m = OrderStatMultiset::new();
            for (i, &x) in xs.iter().enumerate() {
                m.insert(x, i as u32);
            }
            let mut got = Vec::new();
            m.for_each_in(lo, hi, &mut |_, i| got.push(i));
            let mut expected: Vec<u32> = xs
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x >= lo && x <= hi)
                .map(|(i, _)| i as u32)
                .collect();
            expected.sort_by(|&a, &b| {
                xs[a as usize].total_cmp(&xs[b as usize]).then(a.cmp(&b))
            });
            prop_assert_eq!(got, expected);
        }
    }
}
