//! Quantile estimation.
//!
//! HiPerBOt splits its observation history into *good* and *bad*
//! configurations at the α-quantile of the observed objective values
//! (the paper uses α = 0.20, §III-C step 2). The quantile definition used
//! here is the linear-interpolation estimator (type 7 in the Hyndman–Fan
//! taxonomy, the default of NumPy and R), which is what the reference TPE
//! implementations use.

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` by linear interpolation.
///
/// The input does not need to be sorted. **NaN values are ignored**: the
/// quantile is computed over the non-NaN subset, so a failed measurement
/// leaking into an objective vector degrades gracefully instead of
/// poisoning the estimate (±∞ still participates, ordered by
/// [`f64::total_cmp`]). Returns `None` when there are no non-NaN values,
/// or `q` is outside `[0, 1]` or NaN.
///
/// # Examples
/// ```
/// use hiperbot_stats::quantile::quantile;
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&v, 0.0), Some(1.0));
/// assert_eq!(quantile(&v, 1.0), Some(4.0));
/// assert_eq!(quantile(&v, 0.5), Some(2.5));
/// // NaNs are filtered, not propagated:
/// assert_eq!(quantile(&[1.0, f64::NAN, 3.0], 0.5), Some(2.0));
/// ```
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    Some(quantile_sorted(&sorted, q))
}

/// Same as [`quantile`] but assumes `sorted` is already ascending and
/// non-empty. This is the hot-path variant used by the surrogate, which
/// keeps its history sorted incrementally.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the `q`-quantile of `values` by partial selection instead of a
/// full sort: O(n) expected via `select_nth_unstable_by` rather than the
/// O(n log n) of [`quantile`].
///
/// **Bit-identical to [`quantile`]** on every input: selection places the
/// exact k-th order statistic at the pivot slot, the neighbouring order
/// statistic is recovered as the minimum of the right partition (unique in
/// bits because `total_cmp`-equal f64 values share one bit pattern), and the
/// interpolation arithmetic is written identically. NaN handling matches
/// too: NaN entries are filtered before selection.
///
/// This is the from-scratch fit path used by `split_by_quantile` (bootstrap,
/// recovery, and the incremental engine's parity mode); steady-state refits
/// use the order-statistics tree in [`crate::order_stats`] instead.
pub fn quantile_select(values: &[f64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    let n = v.len();
    if n == 1 {
        return Some(v[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let (_, &mut lo_v, rest) = v.select_nth_unstable_by(lo, f64::total_cmp);
    if lo == hi {
        return Some(lo_v);
    }
    // hi == lo + 1, and lo < n - 1 (else pos would be integral), so the
    // right partition is non-empty and its minimum is order statistic `hi`.
    let hi_v = rest
        .iter()
        .copied()
        .min_by(f64::total_cmp)
        .expect("right partition non-empty when lo < hi");
    let frac = pos - lo as f64;
    Some(lo_v * (1.0 - frac) + hi_v * frac)
}

/// Splits `values` into (good, bad) index sets at the `alpha`-quantile.
///
/// An index `i` is *good* when `values[i] < threshold`, where the threshold
/// is the `alpha`-quantile over the **non-NaN** values — NaN entries (failed
/// measurements) always classify as *bad*, never panic, and never shift the
/// threshold. At least one observation is always classified good (the best
/// under [`f64::total_cmp`], which prefers any finite value over NaN), since
/// the surrogate model needs a non-empty good density. Returns
/// `(good_indices, bad_indices, threshold)`; the threshold is NaN when every
/// value is NaN.
pub fn split_by_quantile(values: &[f64], alpha: f64) -> (Vec<usize>, Vec<usize>, f64) {
    assert!(!values.is_empty(), "cannot split an empty observation set");
    // `None` only when every value is NaN; `v < NaN` below is then false for
    // every entry, so everything lands in `bad` and the best-promotion path
    // still yields exactly one good index.
    let threshold = quantile_select(values, alpha).unwrap_or(f64::NAN);
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        if v < threshold {
            good.push(i);
        } else {
            bad.push(i);
        }
    }
    if good.is_empty() {
        // Degenerate case (e.g. all values equal, or alpha = 0): promote the
        // single best observation so p_g is always defined. NaN never wins
        // against a non-NaN value (total_cmp alone would rank a negative-sign
        // NaN below -inf).
        let best = values
            .iter()
            .enumerate()
            .min_by(|a, b| match (a.1.is_nan(), b.1.is_nan()) {
                (false, true) => core::cmp::Ordering::Less,
                (true, false) => core::cmp::Ordering::Greater,
                _ => a.1.total_cmp(b.1),
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        good.push(best);
        bad.retain(|&i| i != best);
    }
    (good, bad, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_returns_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn out_of_range_q_returns_none() {
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
        assert_eq!(quantile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.0), Some(7.0));
        assert_eq!(quantile(&[7.0], 0.5), Some(7.0));
        assert_eq!(quantile(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
        assert_eq!(quantile(&[4.0, 1.0, 3.0, 2.0], 0.5), Some(2.5));
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        // numpy.quantile([1,2,3,4,5], 0.2) == 1.8
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((quantile(&v, 0.2).unwrap() - 1.8).abs() < 1e-12);
        // numpy.quantile([10, 20], 0.25) == 12.5
        assert!((quantile(&[10.0, 20.0], 0.25).unwrap() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn split_classifies_below_threshold_as_good() {
        let values = [5.0, 1.0, 4.0, 2.0, 3.0];
        let (good, bad, thr) = split_by_quantile(&values, 0.4);
        // threshold = quantile(0.4) = 2.6; good = {1.0, 2.0} at indices 1, 3
        assert!((thr - 2.6).abs() < 1e-12);
        assert_eq!(good, vec![1, 3]);
        assert_eq!(bad, vec![0, 2, 4]);
    }

    #[test]
    fn split_always_has_at_least_one_good() {
        let values = [3.0, 3.0, 3.0];
        let (good, bad, _) = split_by_quantile(&values, 0.2);
        assert_eq!(good.len(), 1);
        assert_eq!(bad.len(), 2);

        let values = [9.0, 5.0, 7.0];
        let (good, _, _) = split_by_quantile(&values, 0.0);
        assert_eq!(good, vec![1]); // index of the best value
    }

    // Regression: a NaN objective (failed measurement) used to panic inside
    // `sort_by(partial_cmp .. expect)`; the contract is now to filter NaN.
    #[test]
    fn quantile_ignores_nan_values() {
        let v = [1.0, f64::NAN, 2.0, 3.0, f64::NAN, 4.0];
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
    }

    #[test]
    fn quantile_of_all_nan_is_none() {
        assert_eq!(quantile(&[f64::NAN, f64::NAN], 0.5), None);
    }

    #[test]
    fn quantile_keeps_infinities_ordered() {
        let v = [f64::NEG_INFINITY, 0.0, f64::INFINITY];
        assert_eq!(quantile(&v, 0.0), Some(f64::NEG_INFINITY));
        assert_eq!(quantile(&v, 1.0), Some(f64::INFINITY));
    }

    // Regression: `split_by_quantile` used to panic on NaN; NaN entries now
    // classify as bad without shifting the threshold.
    #[test]
    fn split_sends_nan_to_bad_without_panicking() {
        let values = [5.0, f64::NAN, 1.0, 4.0, 2.0, 3.0];
        let (good, bad, thr) = split_by_quantile(&values, 0.4);
        // threshold over the non-NaN subset [1..5] at q=0.4 is 2.6
        assert!((thr - 2.6).abs() < 1e-12);
        assert_eq!(good, vec![2, 4]);
        assert_eq!(bad, vec![0, 1, 3, 5]);
    }

    #[test]
    fn split_of_all_nan_promotes_one_good() {
        let values = [f64::NAN, f64::NAN, f64::NAN];
        let (good, bad, thr) = split_by_quantile(&values, 0.2);
        assert!(thr.is_nan());
        assert_eq!(good.len(), 1);
        assert_eq!(bad.len(), 2);
    }

    #[test]
    fn split_promotion_prefers_finite_over_nan() {
        // All values >= threshold (alpha = 0): the promoted best must be the
        // finite value, not a NaN (total_cmp orders NaN above +inf).
        let values = [f64::NAN, 7.0, f64::NAN];
        let (good, _, _) = split_by_quantile(&values, 0.0);
        assert_eq!(good, vec![1]);
    }

    // Regression for the selection-based threshold: heavy ties straddling
    // the quantile position must produce the same good/bad membership the
    // old sort-based threshold produced (the split's `v < threshold` test
    // plus the first-best promotion). The reference is computed inline with
    // the original full-sort implementation.
    #[test]
    fn selection_threshold_preserves_membership_on_ties() {
        let cases: &[&[f64]] = &[
            &[2.0, 2.0, 2.0, 2.0, 2.0],
            &[1.0, 2.0, 2.0, 2.0, 3.0],
            &[2.0, 1.0, 2.0, 1.0, 2.0, 1.0],
            &[-0.0, 0.0, -0.0, 0.0],
            &[5.0, 1.0, 1.0, 1.0, 9.0, 1.0],
            &[3.0, f64::NAN, 3.0, 3.0, f64::NAN],
        ];
        for &values in cases {
            for &alpha in &[0.0, 0.2, 0.25, 0.4, 0.5, 1.0] {
                let sort_threshold = {
                    let mut sorted: Vec<f64> =
                        values.iter().copied().filter(|v| !v.is_nan()).collect();
                    sorted.sort_by(f64::total_cmp);
                    if sorted.is_empty() {
                        f64::NAN
                    } else {
                        quantile_sorted(&sorted, alpha)
                    }
                };
                let select_threshold = quantile_select(values, alpha).unwrap_or(f64::NAN);
                assert_eq!(
                    select_threshold.to_bits(),
                    sort_threshold.to_bits(),
                    "threshold bits differ for {values:?} at alpha={alpha}"
                );
                let (good, bad, thr) = split_by_quantile(values, alpha);
                // Reference membership from the sort-based threshold.
                let ref_good: Vec<usize> = values
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v < sort_threshold)
                    .map(|(i, _)| i)
                    .collect();
                if ref_good.is_empty() {
                    assert_eq!(good.len(), 1, "promotion must keep exactly one good");
                } else {
                    assert_eq!(good, ref_good, "good set changed for {values:?}");
                }
                assert_eq!(good.len() + bad.len(), values.len());
                assert_eq!(thr.to_bits(), sort_threshold.to_bits());
            }
        }
    }

    proptest! {
        #[test]
        fn quantile_select_matches_quantile_bitwise(
            xs in proptest::collection::vec(-1e6f64..1e6, 0..120),
            nan_mask in proptest::collection::vec(0u8..2, 0..120),
            q in 0.0f64..1.0,
        ) {
            let xs: Vec<f64> = xs
                .iter()
                .zip(nan_mask.iter().chain(std::iter::repeat(&0)))
                .map(|(&x, &is_nan)| if is_nan == 1 { f64::NAN } else { x })
                .collect();
            let a = quantile_select(&xs, q);
            let b = quantile(&xs, q);
            match (a, b) {
                (Some(a), Some(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
        }

        #[test]
        fn quantile_is_monotone_in_q(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-9);
        }

        #[test]
        fn quantile_is_within_data_range(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q in 0.0f64..1.0,
        ) {
            let v = quantile(&xs, q).unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }

        #[test]
        fn split_partitions_all_indices(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            alpha in 0.01f64..0.99,
        ) {
            let (good, bad, _) = split_by_quantile(&xs, alpha);
            prop_assert_eq!(good.len() + bad.len(), xs.len());
            let mut all: Vec<usize> = good.iter().chain(bad.iter()).cloned().collect();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), xs.len());
        }

        #[test]
        fn every_good_is_no_worse_than_every_bad(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
            alpha in 0.01f64..0.99,
        ) {
            let (good, bad, _) = split_by_quantile(&xs, alpha);
            let worst_good = good.iter().map(|&i| xs[i]).fold(f64::NEG_INFINITY, f64::max);
            let best_bad = bad.iter().map(|&i| xs[i]).fold(f64::INFINITY, f64::min);
            prop_assert!(worst_good <= best_bad + 1e-9);
        }
    }
}
