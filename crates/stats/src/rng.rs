//! Deterministic random-number utilities.
//!
//! Every experiment in the paper reproduction must be exactly repeatable, so
//! all stochastic components (initial sampling, noise models, repeated
//! trials) derive their randomness from explicit seeds. [`SeedSequence`]
//! provides a cheap, collision-resistant way to split one master seed into
//! independent streams — one per repetition, per method, per dataset —
//! without any stream observing another's draws.

/// SplitMix64 step: advances `state` and returns a well-mixed 64-bit output.
///
/// This is the finalizer from Vigna's SplitMix64 generator; it passes
/// BigCrush and is the standard tool for turning correlated integer inputs
/// (seed counters, hashes) into independent-looking seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes an arbitrary list of 64-bit words into a single seed.
///
/// Used by the application simulators to derive a deterministic noise value
/// for each `(dataset seed, configuration index)` pair.
#[inline]
pub fn mix_words(words: &[u64]) -> u64 {
    let mut state = 0x243F_6A88_85A3_08D3; // pi digits: domain separation
    let mut acc = 0u64;
    for &w in words {
        state ^= w;
        acc ^= splitmix64(&mut state);
    }
    // One more round so that trailing zero words still change the output.
    state ^= acc;
    splitmix64(&mut state)
}

/// Converts a hash to a uniform in the open interval (0, 1).
///
/// The top 53 bits become the mantissa (the full precision of an `f64` in
/// `[0, 1)`), then the value is nudged off exact 0 and 1 so callers can
/// take logarithms or odds ratios without guarding the endpoints. Used for
/// every hash-derived probability draw (noise, fault injection, backoff
/// jitter), keeping those draws independent of any stateful RNG stream.
#[inline]
pub fn u64_to_unit_open(h: u64) -> f64 {
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u.clamp(1e-16, 1.0 - 1e-16)
}

/// A splittable source of seeds.
///
/// `SeedSequence` hands out an unbounded stream of 64-bit seeds derived from
/// a master seed. Child sequences created with [`SeedSequence::split`] are
/// independent of the parent's subsequent draws, which lets the evaluation
/// harness give each of the 50 repetitions of an experiment its own stream
/// while remaining reproducible regardless of execution order (the
/// repetitions run in parallel under rayon).
#[derive(Debug, Clone)]
pub struct SeedSequence {
    state: u64,
    counter: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(seed: u64) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        // Burn one step so that `new(0)` and `new(0x9E3779B97F4A7C15)` differ
        // in internal state, not just in phase.
        let _ = splitmix64(&mut state);
        Self { state, counter: 0 }
    }

    /// Returns the next seed in the stream.
    pub fn next_seed(&mut self) -> u64 {
        let c = self.counter;
        self.counter += 1;
        mix_words(&[self.state, c])
    }

    /// Creates an independent child sequence.
    ///
    /// The child is keyed on the parent's state and the position at which it
    /// was split, so splitting twice yields two different children.
    pub fn split(&mut self) -> SeedSequence {
        let tag = self.next_seed();
        SeedSequence::new(mix_words(&[tag, 0x5EED_5EED_5EED_5EED]))
    }

    /// Derives the seed for a labeled subsystem, e.g. `derive(b"init")`.
    ///
    /// Unlike [`next_seed`](Self::next_seed) this does not advance the
    /// sequence: the same label always maps to the same seed, which keeps
    /// experiment components decoupled from the order in which they
    /// initialize.
    pub fn derive(&self, label: &[u8]) -> u64 {
        let mut words = vec![self.state, self.counter];
        for chunk in label.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            words.push(u64::from_le_bytes(w));
        }
        words.push(label.len() as u64);
        mix_words(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_known_values_are_stable() {
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        // Regression pin: these must never change or every dataset changes.
        assert_ne!(a, b);
        let mut s2 = 0u64;
        assert_eq!(a, splitmix64(&mut s2));
    }

    #[test]
    fn sequence_is_deterministic() {
        let mut a = SeedSequence::new(42);
        let mut b = SeedSequence::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn different_master_seeds_diverge() {
        let mut a = SeedSequence::new(1);
        let mut b = SeedSequence::new(2);
        assert_ne!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn seeds_do_not_collide_in_long_streams() {
        let mut seq = SeedSequence::new(7);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(seq.next_seed()), "collision in seed stream");
        }
    }

    #[test]
    fn splits_are_independent_of_parent_continuation() {
        let mut parent1 = SeedSequence::new(99);
        let mut child1 = parent1.split();
        let _ = parent1.next_seed(); // parent keeps drawing

        let mut parent2 = SeedSequence::new(99);
        let mut child2 = parent2.split();
        // child streams must be identical regardless of parent activity
        for _ in 0..10 {
            assert_eq!(child1.next_seed(), child2.next_seed());
        }
    }

    #[test]
    fn successive_splits_differ() {
        let mut parent = SeedSequence::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_seed(), c2.next_seed());
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let seq = SeedSequence::new(3);
        assert_eq!(seq.derive(b"init"), seq.derive(b"init"));
        assert_ne!(seq.derive(b"init"), seq.derive(b"noise"));
        // Labels that are prefixes of each other must not collide.
        assert_ne!(seq.derive(b"a"), seq.derive(b"a\0"));
    }

    #[test]
    fn mix_words_distinguishes_permutations() {
        assert_ne!(mix_words(&[1, 2]), mix_words(&[2, 1]));
        assert_ne!(mix_words(&[0]), mix_words(&[0, 0]));
    }
}
