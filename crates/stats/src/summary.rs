//! Streaming summary statistics.
//!
//! The evaluation protocol of the paper (§V) runs every method 50 times and
//! reports the mean and standard deviation of each metric at each sample-size
//! checkpoint. [`Summary`] accumulates those trials with Welford's
//! numerically stable online algorithm, avoiding the catastrophic
//! cancellation of the naive sum-of-squares formula.

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary into this one (parallel reduction).
    ///
    /// Uses Chan et al.'s pairwise combination formula, so the result is
    /// identical (up to rounding) to pushing all observations into a single
    /// accumulator. This is what makes the rayon-parallel trial runner give
    /// the same statistics as a sequential run.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 when fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance; 0 when fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation (what the paper's error bars show).
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Half-width of the 95 % confidence interval on the mean,
    /// `t(0.975, n−1) · s / √n`, using a small lookup of Student-t
    /// quantiles (the evaluation harness reports 50-repetition means, so
    /// the normal approximation alone would be slightly anti-conservative).
    /// Returns 0 with fewer than 2 observations.
    pub fn confidence95(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let df = (self.count - 1) as usize;
        // t-quantiles for 0.975 at df = 1..30, then the asymptote.
        const T: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        let t = if df <= 30 {
            T[df - 1]
        } else {
            1.96 + 2.4 / df as f64
        };
        t * self.sample_std_dev() / (self.count as f64).sqrt()
    }

    /// Smallest observation; +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_value_has_zero_variance() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.mean(), 3.5);
    }

    #[test]
    fn confidence_interval_shrinks_with_n_and_matches_known_values() {
        assert_eq!(Summary::of(&[1.0]).confidence95(), 0.0);
        // n=2, values {0, 2}: s = sqrt(2), t(0.975, 1) = 12.706
        let s = Summary::of(&[0.0, 2.0]);
        let expected = 12.706 * (2.0f64).sqrt() / (2.0f64).sqrt();
        assert!((s.confidence95() - expected).abs() < 1e-9);
        // more data, same spread -> tighter interval
        let wide = Summary::of(&[0.0, 2.0, 0.0, 2.0]);
        let wider = Summary::of(&[0.0, 2.0]);
        assert!(wide.confidence95() < wider.confidence95());
        // large-n asymptote approaches 1.96 s/sqrt(n)
        let big = Summary::of(&(0..200).map(|i| (i % 2) as f64).collect::<Vec<_>>());
        let approx = 1.96 * big.sample_std_dev() / (200.0f64).sqrt();
        assert!((big.confidence95() - approx).abs() / approx < 0.02);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::of(&[1.0, 2.0, 3.0]);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Summary::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut e = Summary::new();
        e.merge(&Summary::of(&[1.0, 2.0, 3.0]));
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            xs in proptest::collection::vec(-1e6f64..1e6, 0..200),
            split in 0usize..200,
        ) {
            let split = split.min(xs.len());
            let mut left = Summary::of(&xs[..split]);
            let right = Summary::of(&xs[split..]);
            left.merge(&right);
            let all = Summary::of(&xs);
            prop_assert_eq!(left.count(), all.count());
            if !xs.is_empty() {
                prop_assert!((left.mean() - all.mean()).abs() < 1e-6);
                prop_assert!((left.variance() - all.variance()).abs() < 1e-3);
                prop_assert_eq!(left.min(), all.min());
                prop_assert_eq!(left.max(), all.max());
            }
        }

        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
            let s = Summary::of(&xs);
            prop_assert!(s.variance() >= 0.0);
            prop_assert!(s.sample_variance() >= 0.0);
        }

        #[test]
        fn mean_is_bounded_by_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&xs);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
