//! Numerical edge cases across the statistics substrate: extreme scales,
//! degenerate inputs, and near-singular systems that the in-module unit
//! tests don't stress.

use hiperbot_stats::histogram::SmoothedHistogram;
use hiperbot_stats::kde::{Bandwidth, GaussianKde};
use hiperbot_stats::linalg::Matrix;
use hiperbot_stats::quantile::{quantile, split_by_quantile};
use hiperbot_stats::{js_divergence, Summary};

#[test]
fn quantiles_survive_extreme_scales() {
    let tiny: Vec<f64> = (1..=10).map(|i| i as f64 * 1e-300).collect();
    let q = quantile(&tiny, 0.5).unwrap();
    assert!(q > 4e-300 && q < 7e-300);

    let huge: Vec<f64> = (1..=10).map(|i| i as f64 * 1e300).collect();
    let q = quantile(&huge, 0.5).unwrap();
    assert!(q > 4e300 && q < 7e300);
}

#[test]
fn split_handles_heavily_tied_data() {
    // 90% of values identical: the good set must stay small and valid.
    let mut values = vec![5.0; 90];
    values.extend((0..10).map(|i| 1.0 + 0.1 * i as f64));
    let (good, bad, thr) = split_by_quantile(&values, 0.2);
    assert_eq!(good.len() + bad.len(), 100);
    assert!(!good.is_empty());
    for &g in &good {
        assert!(values[g] < thr);
    }
}

#[test]
fn kde_with_enormous_bandwidth_is_flat() {
    let kde = GaussianKde::fit(&[0.0, 1.0, 2.0], Bandwidth::Fixed(1e6));
    let a = kde.pdf(0.0);
    let b = kde.pdf(100.0);
    assert!((a - b).abs() / a < 1e-6, "{a} vs {b}");
}

#[test]
fn kde_with_tiny_bandwidth_separates_points() {
    let kde = GaussianKde::fit(&[0.0, 10.0], Bandwidth::Fixed(1e-3));
    assert!(kde.pdf(0.0) > 1e3 * kde.pdf(5.0).max(f64::MIN_POSITIVE));
    assert!(kde.log_pdf(5.0).is_finite());
}

#[test]
fn histogram_with_huge_pseudo_count_approaches_uniform() {
    let h = SmoothedHistogram::from_observations(4, 1e9, &[0, 0, 0, 0, 0]);
    for i in 0..4 {
        assert!((h.pmf(i) - 0.25).abs() < 1e-6);
    }
}

#[test]
fn js_divergence_with_near_zero_entries_is_stable() {
    let p = [1.0 - 3e-15, 1e-15, 1e-15, 1e-15];
    let q = [0.25, 0.25, 0.25, 0.25];
    let d = js_divergence(&p, &q);
    assert!(d.is_finite() && d > 0.0 && d <= std::f64::consts::LN_2 + 1e-9);
}

#[test]
fn cholesky_near_singular_fails_cleanly_with_jitter_fixing_it() {
    // Rank-deficient Gram matrix: two identical rows.
    let x = [[1.0, 2.0], [1.0, 2.0], [3.0, 1.0]];
    let mut a = Matrix::zeros(3, 3);
    for i in 0..3 {
        for j in 0..3 {
            a[(i, j)] = x[i][0] * x[j][0] + x[i][1] * x[j][1];
        }
    }
    assert!(a.cholesky().is_err(), "singular matrix must be rejected");
    // The GP's noise jitter repairs it.
    for i in 0..3 {
        a[(i, i)] += 1e-6;
    }
    let l = a.cholesky().expect("jittered matrix factorizes");
    let recon = l.matmul(&l.transpose());
    for i in 0..3 {
        for j in 0..3 {
            assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-6);
        }
    }
}

#[test]
fn summary_merge_is_stable_under_many_tiny_merges() {
    // 9996 = 7 * 1428: whole cycles, so the exact mean is 1.3.
    let mut acc = Summary::new();
    for i in 0..9996 {
        let mut s = Summary::new();
        s.push(1.0 + (i % 7) as f64 * 0.1);
        acc.merge(&s);
    }
    assert_eq!(acc.count(), 9996);
    assert!((acc.mean() - 1.3).abs() < 1e-9, "mean {}", acc.mean());
    assert!(acc.variance() > 0.0);
}

#[test]
fn summary_handles_catastrophic_cancellation_inputs() {
    // Large offset + small variance: the naive sum-of-squares formula
    // would produce a negative variance here.
    let values: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 3) as f64 * 0.001).collect();
    let s = Summary::of(&values);
    assert!(s.variance() >= 0.0);
    assert!(s.variance() < 1.0);
    assert!((s.mean() - 1e9).abs() < 1.0);
}
