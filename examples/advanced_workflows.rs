//! Advanced tuner workflows: stopping rules, batch suggestions, and
//! checkpoint/resume — the pieces a production tuning campaign needs
//! around the core loop.
//!
//! ```sh
//! cargo run --release --example advanced_workflows
//! ```

use hiperbot::apps::{lulesh, Scale};
use hiperbot::core::{InitDesign, StoppingRule, StoppingSet, Tuner, TunerOptions};

fn main() {
    let dataset = lulesh::dataset(Scale::Target);
    let space = dataset.space().clone();

    // --- 1. Stopping rules instead of a fixed budget. -------------------
    // Stop when 25 consecutive evaluations fail to improve by ≥ 0.5%, or
    // at 400 evaluations, whichever comes first.
    let rules = StoppingSet::new()
        .with(StoppingRule::MaxEvaluations(400))
        .with(StoppingRule::NoImprovement {
            window: 25,
            min_delta: 0.005,
        });
    let mut tuner = Tuner::new(
        space.clone(),
        TunerOptions::default()
            .with_seed(1)
            .with_init_design(InitDesign::LatinHypercube),
    );
    let best = tuner.run_until(&rules, |cfg| dataset.evaluate(cfg));
    println!(
        "stagnation-stopped after {} evaluations: best {:.3} s",
        best.evaluations, best.objective
    );

    // --- 2. Batch suggestions for parallel evaluation. ------------------
    // Suppose four build/run slots are free: take the surrogate's top-4
    // unseen configurations and evaluate them together.
    let batch = tuner.suggest_batch(4);
    println!("\nnext batch of 4 to evaluate in parallel:");
    for cfg in &batch {
        println!("  {}", cfg.display_with(space.params()));
    }

    // --- 3. Checkpoint and resume. ---------------------------------------
    let checkpoint = serde_json::to_string(tuner.history()).expect("serialize");
    println!(
        "\ncheckpoint: {} evaluations, {} bytes of JSON",
        tuner.history().len(),
        checkpoint.len()
    );

    let restored = serde_json::from_str(&checkpoint).expect("deserialize");
    let mut resumed = Tuner::resume(
        space.clone(),
        TunerOptions::default().with_seed(1),
        restored,
    );
    let more = resumed.run(best.evaluations + 20, |cfg| dataset.evaluate(cfg));
    println!(
        "resumed and ran 20 more evaluations: best now {:.3} s ({} total)",
        more.objective, more.evaluations
    );
}
