//! Plugging your own application into HiPerBOt — the downstream-adoption
//! story.
//!
//! Shows the full surface a user touches: mixed discrete/categorical/
//! continuous parameters, feasibility constraints, the Proposal strategy
//! for the continuous knob, incremental stepping with a custom stopping
//! rule, and baseline comparison.
//!
//! ```sh
//! cargo run --release --example custom_app
//! ```

use hiperbot::baselines::{ConfigSelector, RandomSelector};
use hiperbot::core::{SelectionStrategy, Tuner, TunerOptions};
use hiperbot::space::{Configuration, Domain, ParamDef, ParameterSpace};

/// A made-up stencil application: time depends on tile size, a pluggable
/// allocator, a communication mode, and a continuous prefetch distance.
fn app_runtime(cfg: &Configuration, space: &ParameterSpace) -> f64 {
    let tile = cfg.numeric_value(0, &space.params()[0]);
    let alloc = cfg.value(1).index(); // categorical: 0 system, 1 pool, 2 arena
    let comm = cfg.value(2).index(); // categorical: 0 eager, 1 rendezvous
    let prefetch = cfg.value(3).as_f64();

    let tile_term = (tile.log2() - 6.0).powi(2) * 0.3; // sweet spot at 64
    let alloc_term = [0.9, 0.0, 0.2][alloc];
    let comm_term = if comm == 0 { 0.35 } else { 0.0 };
    let prefetch_term = (prefetch - 0.6).powi(2) * 2.0;
    3.0 + tile_term + alloc_term + comm_term + prefetch_term
}

fn main() {
    let space = ParameterSpace::builder()
        .param(ParamDef::new(
            "tile",
            Domain::discrete_ints(&[8, 16, 32, 64, 128, 256]),
        ))
        .param(ParamDef::new(
            "allocator",
            Domain::categorical(&["system", "pool", "arena"]),
        ))
        .param(ParamDef::new(
            "comm",
            Domain::categorical(&["eager", "rendezvous"]),
        ))
        .param(ParamDef::new("prefetch", Domain::continuous(0.0, 1.0)))
        // Feasibility: eager comm can't use the arena allocator (say the
        // RDMA path pins pages the arena recycles).
        .constraint("eager excludes arena", |cfg, _| {
            !(cfg.value(2).index() == 0 && cfg.value(1).index() == 2)
        })
        .build()
        .expect("valid space");

    // Continuous knob ⇒ Proposal strategy (Ranking needs a finite space).
    let options = TunerOptions::default()
        .with_seed(2024)
        .with_init_samples(15)
        .with_strategy(SelectionStrategy::Proposal { candidates: 32 });
    let mut tuner = Tuner::new(space.clone(), options);

    // Incremental driving with a custom stopping rule: stop when 12
    // consecutive evaluations fail to improve the best.
    let mut stale = 0;
    let mut best = f64::INFINITY;
    while stale < 12 && tuner.history().len() < 120 {
        let before = tuner.history().len();
        if !tuner.step(|c| app_runtime(c, &space)) {
            break;
        }
        if tuner.history().len() == before {
            continue; // duplicate proposal, nothing evaluated
        }
        let now = tuner.history().best().expect("non-empty").2;
        if now < best - 1e-9 {
            best = now;
            stale = 0;
        } else {
            stale += 1;
        }
    }

    let (_, cfg, obj) = tuner.history().best().expect("ran");
    println!(
        "HiPerBOt: {} evaluations, best {obj:.3}\n  {}",
        tuner.history().len(),
        cfg.display_with(space.params())
    );

    // Against random search with the same budget — needs a discretized
    // pool, so sample one for the baseline.
    use hiperbot::space::sampling::sample_distinct;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let pool = sample_distinct(&space, 4000, &mut rng);
    let run = RandomSelector.select(
        &space,
        &pool,
        &|c| app_runtime(c, &space),
        tuner.history().len(),
        7,
    );
    println!(
        "Random:   {} evaluations, best {:.3}",
        run.len(),
        run.best_within(run.len())
    );
}
