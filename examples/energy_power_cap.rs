//! Tune Kripke for energy under RAPL-style power caps (paper §V-A, Fig. 3).
//!
//! Demonstrates that the expert heuristic — "run at the 2nd or 3rd highest
//! power level" — is far from optimal, and that the tuner finds the real
//! sweet spot across application *and* hardware knobs jointly.
//!
//! ```sh
//! cargo run --release --example energy_power_cap
//! ```

use hiperbot::apps::{kripke, Scale};
use hiperbot::core::{Tuner, TunerOptions};

fn main() {
    println!("generating the Kripke power-cap sweep (17k configurations)…");
    let dataset = kripke::energy_dataset(Scale::Target);
    let space = dataset.space().clone();

    let (best_idx, exhaustive_best) = dataset.best();
    let expert_cfg = kripke::energy_expert_config(&space);
    let expert = dataset.evaluate(&expert_cfg);

    println!("configurations: {}", dataset.len());
    println!(
        "expert (2nd-highest power level): {expert:.0} J (paper anchor: 4742 J)\n  {}",
        expert_cfg.display_with(space.params())
    );
    println!(
        "exhaustive best: {exhaustive_best:.0} J\n  {}",
        dataset.config(best_idx).display_with(space.params())
    );

    let budget = (dataset.len() as f64 * 0.022) as usize; // paper: 2.2% of the space
    let mut tuner = Tuner::new(space.clone(), TunerOptions::default().with_seed(11));
    let best = tuner.run(budget, |cfg| dataset.evaluate(cfg));

    println!(
        "\nHiPerBOt with {budget} evaluations (2.2% of the space): {:.0} J\n  {}",
        best.objective,
        best.config.display_with(space.params())
    );
    println!(
        "savings vs expert: {:.0}%",
        100.0 * (1.0 - best.objective / expert)
    );
}
