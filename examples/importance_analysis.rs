//! Parameter-importance analysis (paper §VI, Table I).
//!
//! Ranks each application's parameters by the Jensen–Shannon divergence
//! between their good- and bad-configuration densities — once from a cheap
//! 10 % tuning run, once from the full dataset — and shows the cheap run
//! already identifies what matters.
//!
//! ```sh
//! cargo run --release --example importance_analysis
//! ```

use hiperbot::apps::{lulesh, openatom, Scale};
use hiperbot::core::importance::{importance_from_surrogate, parameter_importance};
use hiperbot::core::{Tuner, TunerOptions};

fn main() {
    for dataset in [
        lulesh::dataset(Scale::Target),
        openatom::dataset(Scale::Target),
    ] {
        println!("=== {} ({} configs) ===", dataset.name(), dataset.len());

        // Cheap column: 10% of the space, selected by the tuner itself.
        let budget = dataset.len() / 10;
        let mut tuner = Tuner::new(
            dataset.space().clone(),
            TunerOptions::default().with_seed(3),
        );
        tuner.run(budget, |c| dataset.evaluate(c));
        let partial = importance_from_surrogate(dataset.space(), &tuner.surrogate());

        // Ground truth: every sample.
        let full = parameter_importance(
            dataset.space(),
            dataset.configs(),
            dataset.objectives(),
            0.20,
        );

        println!("10% samples:");
        for p in &partial {
            println!("  {:<12} JS = {:.3}", p.name, p.js);
        }
        println!("all samples:");
        for p in &full {
            println!("  {:<12} JS = {:.3}", p.name, p.js);
        }
        println!(
            "top parameter agreement: {} (partial) vs {} (full)\n",
            partial[0].name, full[0].name
        );
    }
}
