//! Tracing and profiling a tuning run.
//!
//! Attaches a recorder tee to the tuner — a JSONL trace file plus a live
//! metrics registry — runs a short tuning session, then prints the
//! incumbent trajectory and the per-phase latency table, and finally
//! replays the written trace offline.
//!
//! Run with: `cargo run --example observability`

use hiperbot::core::{Tuner, TunerOptions};
use hiperbot::obs::{
    summarize_trace, Event, JsonlSink, MemoryRecorder, MetricsRecorder, MetricsRegistry,
    MultiRecorder, Recorder,
};
use hiperbot::space::{Configuration, Domain, ParamDef, ParameterSpace};
use std::sync::Arc;

fn main() {
    let space = ParameterSpace::builder()
        .param(ParamDef::new(
            "threads",
            Domain::discrete_ints(&[1, 2, 4, 8, 16, 32]),
        ))
        .param(ParamDef::new(
            "block",
            Domain::discrete_ints(&[16, 32, 64, 128, 256]),
        ))
        .param(ParamDef::new(
            "unroll",
            Domain::discrete_ints(&[1, 2, 4, 8]),
        ))
        .build()
        .unwrap();

    // A synthetic objective with an optimum at (8 threads, block 64, unroll 4).
    let defs = space.params().to_vec();
    let objective = |cfg: &Configuration| {
        let t = cfg.numeric_value(0, &defs[0]);
        let b = cfg.numeric_value(1, &defs[1]);
        let u = cfg.numeric_value(2, &defs[2]);
        (t - 8.0).abs() / 4.0 + (b - 64.0).abs() / 64.0 + (u - 4.0).abs() / 2.0 + 1.0
    };

    // The tee: JSONL file + in-memory event log + latency metrics.
    let trace_path = std::env::temp_dir().join("hiperbot-example-trace.jsonl");
    let sink = Arc::new(JsonlSink::create(&trace_path).expect("create trace file"));
    let memory = Arc::new(MemoryRecorder::new());
    let registry = Arc::new(MetricsRegistry::new());
    let tee = MultiRecorder::new()
        .with(sink.clone())
        .with(memory.clone())
        .with(Arc::new(MetricsRecorder::new(registry.clone())));

    let mut tuner =
        Tuner::new(space, TunerOptions::default().with_seed(42)).with_recorder(Arc::new(tee));
    let best = tuner.run(50, objective);
    sink.flush();

    println!(
        "best objective {:.4} after {} evaluations\n",
        best.objective, best.evaluations
    );

    println!("incumbent trajectory:");
    for event in memory.events() {
        if let Event::IncumbentImproved {
            iteration,
            objective,
            ..
        } = event
        {
            println!("  evaluation {iteration:>3}: {objective:.4}");
        }
    }

    println!("\nlatency by phase:\n{}", registry.render_summary());

    // Offline replay of the written trace reconstructs the same picture.
    let text = std::fs::read_to_string(&trace_path).expect("read trace");
    let summary = summarize_trace(&text).expect("trace parses");
    println!(
        "replayed {} events from {}: {} iterations, {} evaluations, best {:?}",
        summary.events,
        trace_path.display(),
        summary.iterations,
        summary.evaluations,
        summary.final_best,
    );
    let _ = std::fs::remove_file(&trace_path);
}
