//! A tour of the `perfsim` substrate: the analytic models behind the
//! application simulators, usable on their own for quick what-if studies.
//!
//! Prints three mini-studies: a roofline sweep, an OpenMP thread-scaling
//! table, and a topology comparison for an allreduce at scale.
//!
//! ```sh
//! cargo run --release --example performance_models
//! ```

use hiperbot::perfsim::machine::MachineSpec;
use hiperbot::perfsim::omp::OmpModel;
use hiperbot::perfsim::roofline::{attainable_gflops, ridge_intensity};
use hiperbot::perfsim::topology::Topology;
use hiperbot::perfsim::{comm, power};

fn main() {
    let machine = MachineSpec::quartz_like();
    println!(
        "machine: {} cores, {:.0} GF/s peak, {:.0} GB/s, ridge at {:.2} flops/byte\n",
        machine.cores_per_node,
        machine.peak_node_gflops(),
        machine.mem_bw_gbs,
        ridge_intensity(machine.peak_node_gflops(), machine.mem_bw_gbs)
    );

    // --- Roofline sweep. -------------------------------------------------
    println!("arithmetic intensity -> attainable GF/s:");
    for ai in [0.05, 0.1, 0.25, 1.0, 4.0, 16.0] {
        println!(
            "  {ai:>6.2} fl/B  ->  {:>7.1}",
            attainable_gflops(ai, machine.peak_node_gflops(), machine.mem_bw_gbs)
        );
    }

    // --- OpenMP scaling. --------------------------------------------------
    let omp = OmpModel::typical();
    println!("\nOpenMP scaling (typical transport kernel mix):");
    for t in [1usize, 2, 4, 8, 12, 18, 24, 36, 72] {
        println!(
            "  {t:>3} threads: speedup {:>5.2}  (relative time {:.3})",
            omp.speedup(t, machine.cores_per_node),
            omp.relative_time(t, machine.cores_per_node)
        );
    }

    // --- Power capping. ----------------------------------------------------
    println!("\npower cap -> frequency and 10s-nominal compute-bound job:");
    for cap in [80.0, 110.0, 140.0, 170.0, 200.0, 240.0] {
        let f = power::freq_at_cap(cap, &machine);
        let (t, e) = power::time_energy_under_cap(10.0, 0.85, cap, 0.6, &machine);
        println!("  {cap:>5.0} W: {f:.2} GHz, {t:>5.2} s, {e:>6.0} J");
    }

    // --- Topology comparison. ----------------------------------------------
    println!("\n8 KiB allreduce at scale, by interconnect topology:");
    let topologies = [
        ("fat-tree", Topology::FatTree { radix: 36 }),
        ("3-D torus", Topology::Torus3D { dims: [16, 16, 16] }),
        ("dragonfly", Topology::Dragonfly { group_size: 96 }),
    ];
    for nodes in [64usize, 512, 4096] {
        print!("  {nodes:>5} nodes:");
        for (name, topo) in &topologies {
            // Scale the base latency by expected hops; bandwidth by
            // bisection pressure.
            let mut m = machine.clone();
            m.net_latency_us *= topo.latency_scale(nodes);
            m.net_bw_gbs *= topo.bisection_fraction(nodes);
            let t = comm::allreduce_time(8192.0, nodes, &m);
            print!("  {name} {:>8.1} µs", t * 1e6);
        }
        println!();
    }
}
