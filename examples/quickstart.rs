//! Quickstart: tune a small synthetic configuration space in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hiperbot::core::{Tuner, TunerOptions};
use hiperbot::space::{Configuration, Domain, ParamDef, ParameterSpace};

fn main() {
    // 1. Describe the tunables: a thread count and a block size.
    let space = ParameterSpace::builder()
        .param(ParamDef::new(
            "threads",
            Domain::discrete_ints(&[1, 2, 4, 8, 16, 32]),
        ))
        .param(ParamDef::new(
            "block",
            Domain::discrete_ints(&[16, 32, 64, 128, 256, 512]),
        ))
        .build()
        .expect("valid space");

    // 2. The expensive objective — here a stand-in closure; in real use
    //    this is "run your application and report its runtime".
    let objective = |cfg: &Configuration| {
        let threads = cfg.numeric_value(0, &space.params()[0]);
        let block = cfg.numeric_value(1, &space.params()[1]);
        // A landscape with a sweet spot at (8 threads, 128 block).
        let t = 10.0 / threads + 0.05 * threads;
        let b = (block.log2() - 7.0).powi(2) * 0.4;
        t + b + 1.0
    };

    // 3. Run HiPerBOt for 18 evaluations (half the 36-config space).
    let mut tuner = Tuner::new(
        space.clone(),
        TunerOptions::default().with_seed(42).with_init_samples(8),
    );
    let best = tuner.run(18, objective);

    println!(
        "best configuration: {}",
        best.config.display_with(space.params())
    );
    println!("objective value:    {:.3}", best.objective);
    println!("evaluations spent:  {}", best.evaluations);

    // 4. The history is the full audit trail.
    for (cfg, y) in tuner
        .history()
        .configs()
        .iter()
        .zip(tuner.history().objectives())
    {
        println!("  {} -> {y:.3}", cfg.display_with(space.params()));
    }
}
