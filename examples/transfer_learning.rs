//! Transfer learning: tune at large scale using a small-scale study
//! (paper §VII, Fig. 8a).
//!
//! The entire 16-node Kripke power-cap sweep becomes a density prior for
//! tuning the 64-node target with a tight evaluation budget.
//!
//! ```sh
//! cargo run --release --example transfer_learning
//! ```

use hiperbot::apps::{kripke, Scale};
use hiperbot::core::{TransferPrior, Tuner, TunerOptions};

fn main() {
    println!("generating source (16-node) and target (64-node) sweeps…");
    let source = kripke::energy_dataset(Scale::Source);
    let target = kripke::energy_dataset(Scale::Target);

    // Paper budget rule: 1% of the target space + 100 evaluations.
    let budget = target.len() / 100 + 100;
    let (_, exhaustive) = target.best();
    println!(
        "source: {} configs (free), target: {} configs, budget: {budget}",
        source.len(),
        target.len()
    );

    // Prior from the full source study (eqs. 9–10).
    let prior = TransferPrior::from_source(
        source.space(),
        source.configs(),
        source.objectives(),
        0.20,
        1.0,
    );

    // With the prior.
    let mut with = Tuner::new(
        target.space().clone(),
        TunerOptions::default()
            .with_seed(5)
            .with_prior(prior, TransferPrior::default_weight()),
    );
    let best_with = with.run(budget, |c| target.evaluate(c));

    // Without (plain HiPerBOt on the target).
    let mut without = Tuner::new(target.space().clone(), TunerOptions::default().with_seed(5));
    let best_without = without.run(budget, |c| target.evaluate(c));

    println!("\nexhaustive best on target:  {exhaustive:.0} J");
    println!(
        "HiPerBOt + source prior:    {:.0} J  ({:+.1}% vs exhaustive)",
        best_with.objective,
        100.0 * (best_with.objective / exhaustive - 1.0)
    );
    println!(
        "HiPerBOt without prior:     {:.0} J  ({:+.1}% vs exhaustive)",
        best_without.objective,
        100.0 * (best_without.objective / exhaustive - 1.0)
    );

    // How many top-10%-tolerance configs did each find?
    let threshold = exhaustive * 1.10;
    let hits = |t: &Tuner| {
        t.history()
            .objectives()
            .iter()
            .filter(|&&y| y <= threshold)
            .count()
    };
    println!(
        "\ngood (≤ best+10%) configs found: with prior {}, without {}",
        hits(&with),
        hits(&without)
    );
}
