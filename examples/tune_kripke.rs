//! Tune Kripke's execution time, mirroring the paper's §V-A study.
//!
//! Compares HiPerBOt against the expert manual choice and the exhaustive
//! best over the 1560-configuration sweep.
//!
//! ```sh
//! cargo run --release --example tune_kripke
//! ```

use hiperbot::apps::{kripke, Scale};
use hiperbot::core::{Tuner, TunerOptions};

fn main() {
    println!("generating the Kripke execution-time sweep…");
    let dataset = kripke::exec_dataset(Scale::Target);
    let space = dataset.space().clone();

    let (_, exhaustive_best) = dataset.best();
    let expert = dataset.evaluate(&kripke::exec_expert_config(&space));

    println!(
        "space: {} feasible configurations over {} parameters",
        dataset.len(),
        space.n_params()
    );
    println!("expert manual choice: {expert:.2} s (paper anchor: 15.2 s)");
    println!("exhaustive best:      {exhaustive_best:.2} s (paper anchor: 8.43 s)\n");

    for budget in [32, 64, 96, 128] {
        let mut tuner = Tuner::new(space.clone(), TunerOptions::default().with_seed(7));
        let best = tuner.run(budget, |cfg| dataset.evaluate(cfg));
        println!(
            "budget {budget:>4} ({:>4.1}% of space): best {:.2} s  ({:+.1}% vs exhaustive)  {}",
            100.0 * budget as f64 / dataset.len() as f64,
            best.objective,
            100.0 * (best.objective / exhaustive_best - 1.0),
            best.config.display_with(space.params()),
        );
    }

    println!(
        "\nHiPerBOt reaches within a few percent of the exhaustive best while \
         evaluating <10% of the space — the paper's Fig. 2 result."
    );
}
