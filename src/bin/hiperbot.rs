//! The `hiperbot` command-line autotuner.
//!
//! ```sh
//! hiperbot --space space.json --command "./app -t {threads}" --budget 60
//! ```
//!
//! See `hiperbot::cli` for the space-specification format.
//!
//! Exit codes: 0 success, 1 run error, 2 usage error, 3 the run finished
//! but the diagnostics watchdog fired under `--strict-health`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match hiperbot::cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match hiperbot::cli::run_with_health(&options) {
        Ok(((command, objective), alerts)) => {
            println!("best objective: {objective}");
            println!("best command:   {command}");
            if !alerts.is_empty() {
                for alert in &alerts {
                    eprintln!(
                        "health: [{}] {} (value {:.4}, threshold {:.4})",
                        alert.code, alert.message, alert.value, alert.threshold
                    );
                }
                if options.strict_health {
                    eprintln!("error: --strict-health: {} alert(s) fired", alerts.len());
                    std::process::exit(3);
                }
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
