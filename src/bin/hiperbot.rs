//! The `hiperbot` command-line autotuner.
//!
//! ```sh
//! hiperbot --space space.json --command "./app -t {threads}" --budget 60
//! ```
//!
//! See `hiperbot::cli` for the space-specification format.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match hiperbot::cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match hiperbot::cli::run(&options) {
        Ok((command, objective)) => {
            println!("best objective: {objective}");
            println!("best command:   {command}");
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
