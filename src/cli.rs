//! Command-line autotuner plumbing.
//!
//! Backs the `hiperbot` binary in two modes:
//!
//! - **Command mode** — a JSON space specification plus a command template
//!   turn any external program into a tuning objective:
//!
//!   ```sh
//!   hiperbot --space space.json --budget 60 --seed 1 \
//!            --command "./app --threads {threads} --block {block}"
//!   ```
//!
//!   The command is run through `sh -c`; its last stdout line must be the
//!   objective value (smaller = better), or pass `--measure time` to use
//!   wall-clock seconds instead. A command that exits non-zero (or prints
//!   garbage) is a *failed trial*: it is retried per `--max-retries`, and a
//!   permanent failure is quarantined in the tuner's history instead of
//!   being scored with a sentinel value.
//!
//! - **App mode** — `--app kripke` tunes one of the built-in simulated
//!   datasets, with optional deterministic fault injection
//!   (`--fail-prob`, `--timeout-factor`) for exercising the
//!   failure-handling path end to end:
//!
//!   ```sh
//!   hiperbot --app kripke --budget 60 --seed 1 --fail-prob 0.2 --max-retries 2
//!   ```

use crate::core::{
    CheckpointPolicy, EvalOutcome, SelectionStrategy, SurrogateMode, Tuner, TunerCheckpoint,
    TunerOptions,
};
use crate::eval::{outcome_from_sim, BatchExecutor, RetryPolicy, RetryingObjective, ThreadSleeper};
use crate::obs::{
    DiagnosticsRecorder, Event, HealthAlert, JsonlSink, Level, MetricsRecorder, MetricsRegistry,
    MultiRecorder, ProfileRecorder, Recorder, StderrLogger,
};
use crate::perfsim::faults::FaultModel;
use crate::space::{Configuration, Domain, ParamDef, ParameterSpace};
use serde::Deserialize;
use std::sync::Arc;

/// One parameter in the JSON space specification.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ParamSpec {
    /// Discrete integer levels: `{"type":"ints","name":"threads","values":[1,2,4]}`.
    Ints {
        /// Parameter name.
        name: String,
        /// Levels.
        values: Vec<i64>,
    },
    /// Discrete float levels.
    Floats {
        /// Parameter name.
        name: String,
        /// Levels.
        values: Vec<f64>,
    },
    /// Categorical values: `{"type":"categorical","name":"solver","values":["amg","pcg"]}`.
    Categorical {
        /// Parameter name.
        name: String,
        /// Category labels.
        values: Vec<String>,
    },
    /// A continuous range: `{"type":"continuous","name":"alpha","lo":0.0,"hi":1.0}`.
    Continuous {
        /// Parameter name.
        name: String,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

/// The JSON space specification: `{"params":[...]}`.
#[derive(Debug, Clone, Deserialize)]
pub struct SpaceSpec {
    /// The parameters, in order.
    pub params: Vec<ParamSpec>,
}

impl SpaceSpec {
    /// Parses a JSON document.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid space spec: {e}"))
    }

    /// Builds the parameter space.
    pub fn build(&self) -> Result<ParameterSpace, String> {
        let mut b = ParameterSpace::builder();
        for p in &self.params {
            let def = match p {
                ParamSpec::Ints { name, values } => {
                    ParamDef::new(name.clone(), Domain::discrete_ints(values))
                }
                ParamSpec::Floats { name, values } => {
                    ParamDef::new(name.clone(), Domain::discrete_floats(values))
                }
                ParamSpec::Categorical { name, values } => {
                    let refs: Vec<&str> = values.iter().map(|s| s.as_str()).collect();
                    ParamDef::new(name.clone(), Domain::categorical(&refs))
                }
                ParamSpec::Continuous { name, lo, hi } => {
                    ParamDef::new(name.clone(), Domain::continuous(*lo, *hi))
                }
            };
            b = b.param(def);
        }
        b.build().map_err(|e| e.to_string())
    }

    /// Whether any parameter is continuous (selects the Proposal strategy).
    pub fn has_continuous(&self) -> bool {
        self.params
            .iter()
            .any(|p| matches!(p, ParamSpec::Continuous { .. }))
    }
}

/// Substitutes `{name}` placeholders in a command template with the
/// configuration's values.
pub fn render_command(template: &str, cfg: &Configuration, space: &ParameterSpace) -> String {
    let mut out = template.to_string();
    for (i, def) in space.params().iter().enumerate() {
        let value = match cfg.value(i) {
            crate::space::ParamValue::Index(idx) => def.values()[idx].to_string(),
            crate::space::ParamValue::Real(x) => format!("{x}"),
        };
        out = out.replace(&format!("{{{}}}", def.name()), &value);
    }
    out
}

/// How the objective is extracted from a command run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Parse the last stdout line as an `f64`.
    Stdout,
    /// Wall-clock seconds of the command.
    Time,
}

/// Parsed CLI options.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Path to the JSON space spec (command mode).
    pub space_path: String,
    /// Command template with `{param}` placeholders (command mode).
    pub command: String,
    /// Built-in simulated dataset to tune instead of a command
    /// (`kripke`, `kripke-energy`, `hypre`, `lulesh`, `openatom`).
    pub app: Option<String>,
    /// Evaluation budget.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
    /// Objective extraction mode.
    pub measure: Measure,
    /// Bootstrap sample count.
    pub init_samples: usize,
    /// Retries per failed trial (transient failures only).
    pub max_retries: u32,
    /// App mode: base crash probability injected per attempt.
    pub fail_prob: f64,
    /// App mode: timeout threshold as a multiple of the dataset's median
    /// objective (`None` = no timeout channel).
    pub timeout_factor: Option<f64>,
    /// Where to write the JSONL trace (`None` = tracing off).
    pub trace_out: Option<String>,
    /// Stderr event verbosity.
    pub log_level: Level,
    /// Whether to print the per-phase latency table after the run.
    pub metrics_summary: bool,
    /// Where to write Prometheus text exposition after the run
    /// (`None` = off).
    pub metrics_out: Option<String>,
    /// Whether to run the diagnostics layer and print its report.
    pub diag: bool,
    /// Exit non-zero when the diagnostics watchdog fired (implies the
    /// diagnostics layer).
    pub strict_health: bool,
    /// Where to write the folded-stack span profile (`None` = off).
    pub profile_out: Option<String>,
    /// Worker threads for concurrent objective evaluation (1 = serial).
    /// Applies to both strategies: Ranking (finite) and Proposal
    /// (continuous) spaces.
    pub workers: usize,
    /// Configurations suggested per surrogate refit, via constant-liar
    /// batch selection (1 = the paper's serial algorithm). Ranking
    /// batches pick from the refit score table; Proposal batches pick
    /// through the vectorized proposal engine, same liar protocol.
    pub batch: usize,
    /// Surrogate maintenance mode: the O(churn) incremental engine
    /// (default) or a from-scratch refit per iteration. Bit-identical
    /// results either way; `full` is the escape hatch / reference path.
    pub surrogate: SurrogateMode,
    /// Where to write crash-recovery snapshots (`None` = checkpointing
    /// off). Written atomically every `checkpoint_every` trials and at
    /// the end of the run.
    pub checkpoint_out: Option<String>,
    /// Trials between checkpoint snapshots.
    pub checkpoint_every: usize,
    /// Snapshot (or JSONL trace) to resume an interrupted run from.
    pub resume_from: Option<String>,
    /// Speculative suggest-ahead pipelining: overlap surrogate
    /// fitting/selection of batch k+1 with the in-flight evaluation of
    /// batch k. Bit-identical results either way; `off` is the reference
    /// path.
    pub pipeline: bool,
    /// Pin the global rayon pool to this many threads (`None` = ambient
    /// core count). Makes vectorized-sweep timings reproducible across
    /// machines and CI runners.
    pub threads: Option<usize>,
}

impl Default for CliOptions {
    /// The CLI's flag defaults (what `parse_args` yields when only the
    /// required arguments are given).
    fn default() -> Self {
        Self {
            space_path: String::new(),
            command: String::new(),
            app: None,
            budget: 50,
            seed: 0,
            measure: Measure::Stdout,
            init_samples: 20,
            max_retries: 0,
            fail_prob: 0.0,
            timeout_factor: None,
            trace_out: None,
            log_level: Level::Off,
            metrics_summary: false,
            metrics_out: None,
            diag: false,
            strict_health: false,
            profile_out: None,
            workers: 1,
            batch: 1,
            surrogate: SurrogateMode::Incremental,
            checkpoint_out: None,
            checkpoint_every: 10,
            resume_from: None,
            pipeline: false,
            threads: None,
        }
    }
}

/// Parses `argv[1..]`. Returns `Err(usage)` on any problem.
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let usage = "usage: hiperbot --space <spec.json> --command <template> \
                 [--budget N=50] [--seed N=0] [--init N=20] [--measure stdout|time] \
                 [--max-retries N=0] [--workers N=1] [--batch K=1] \
                 [--pipeline on|off=off] [--threads N] \
                 [--surrogate incremental|full] \
                 [--trace-out <trace.jsonl>] [--log-level off|info|debug] [--metrics-summary] \
                 [--metrics-out <file.prom>] [--diag] [--strict-health] \
                 [--profile-out <file.folded>] \
                 [--checkpoint-out <snap.json>] [--checkpoint-every N=10] \
                 [--resume-from <snap.json|trace.jsonl>]\n\
                 \x20      hiperbot --app kripke|kripke-energy|hypre|lulesh|openatom \
                 [--fail-prob P=0] [--timeout-factor F] [common flags]";
    let mut space_path = None;
    let mut command = None;
    let mut app = None;
    let mut budget = 50usize;
    let mut seed = 0u64;
    let mut init_samples = 20usize;
    let mut measure = Measure::Stdout;
    let mut max_retries = 0u32;
    let mut fail_prob = 0.0f64;
    let mut timeout_factor = None;
    let mut trace_out = None;
    let mut log_level = Level::Off;
    let mut metrics_summary = false;
    let mut metrics_out = None;
    let mut diag = false;
    let mut strict_health = false;
    let mut profile_out = None;
    let mut workers = 1usize;
    let mut batch = 1usize;
    let mut pipeline = false;
    let mut threads = None;
    let mut surrogate = SurrogateMode::Incremental;
    let mut checkpoint_out = None;
    let mut checkpoint_every = 10usize;
    let mut resume_from = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{usage}"))
        };
        match arg.as_str() {
            "--space" => space_path = Some(take("--space")?),
            "--command" => command = Some(take("--command")?),
            "--budget" => {
                budget = take("--budget")?
                    .parse()
                    .map_err(|_| format!("--budget must be a positive integer\n{usage}"))?
            }
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|_| format!("--seed must be an integer\n{usage}"))?
            }
            "--init" => {
                init_samples = take("--init")?
                    .parse()
                    .map_err(|_| format!("--init must be a positive integer\n{usage}"))?
            }
            "--measure" => {
                measure = match take("--measure")?.as_str() {
                    "stdout" => Measure::Stdout,
                    "time" => Measure::Time,
                    other => return Err(format!("unknown measure '{other}'\n{usage}")),
                }
            }
            "--app" => app = Some(take("--app")?),
            "--max-retries" => {
                max_retries = take("--max-retries")?
                    .parse()
                    .map_err(|_| format!("--max-retries must be a non-negative integer\n{usage}"))?
            }
            "--fail-prob" => {
                fail_prob = take("--fail-prob")?
                    .parse()
                    .map_err(|_| format!("--fail-prob must be a number\n{usage}"))?
            }
            "--timeout-factor" => {
                let f: f64 = take("--timeout-factor")?
                    .parse()
                    .map_err(|_| format!("--timeout-factor must be a number\n{usage}"))?;
                timeout_factor = Some(f);
            }
            "--workers" => {
                workers = take("--workers")?
                    .parse()
                    .map_err(|_| format!("--workers must be a positive integer\n{usage}"))?
            }
            "--batch" => {
                batch = take("--batch")?
                    .parse()
                    .map_err(|_| format!("--batch must be a positive integer\n{usage}"))?
            }
            "--pipeline" => {
                pipeline = match take("--pipeline")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!(
                            "--pipeline must be on or off, got '{other}'\n{usage}"
                        ))
                    }
                }
            }
            "--threads" => {
                let n: usize = take("--threads")?
                    .parse()
                    .map_err(|_| format!("--threads must be a positive integer\n{usage}"))?;
                threads = Some(n);
            }
            "--surrogate" => {
                surrogate = match take("--surrogate")?.as_str() {
                    "incremental" => SurrogateMode::Incremental,
                    "full" => SurrogateMode::Full,
                    other => return Err(format!("unknown surrogate mode '{other}'\n{usage}")),
                }
            }
            "--trace-out" => trace_out = Some(take("--trace-out")?),
            "--log-level" => {
                log_level = take("--log-level")?
                    .parse()
                    .map_err(|e| format!("{e}\n{usage}"))?
            }
            "--metrics-summary" => metrics_summary = true,
            "--metrics-out" => metrics_out = Some(take("--metrics-out")?),
            "--diag" => diag = true,
            "--strict-health" => strict_health = true,
            "--profile-out" => profile_out = Some(take("--profile-out")?),
            "--checkpoint-out" => checkpoint_out = Some(take("--checkpoint-out")?),
            "--checkpoint-every" => {
                checkpoint_every = take("--checkpoint-every")?.parse().map_err(|_| {
                    format!("--checkpoint-every must be a positive integer\n{usage}")
                })?
            }
            "--resume-from" => resume_from = Some(take("--resume-from")?),
            "--help" | "-h" => return Err(usage.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{usage}")),
        }
    }
    let (space_path, command) = if app.is_some() {
        if space_path.is_some() || command.is_some() {
            return Err(format!("--app excludes --space/--command\n{usage}"));
        }
        (String::new(), String::new())
    } else {
        (
            space_path.ok_or_else(|| format!("--space is required\n{usage}"))?,
            command.ok_or_else(|| format!("--command is required\n{usage}"))?,
        )
    };
    if budget == 0 || init_samples == 0 {
        return Err(format!("budget and init must be positive\n{usage}"));
    }
    if !(0.0..=1.0).contains(&fail_prob) {
        return Err(format!("--fail-prob must be in [0, 1]\n{usage}"));
    }
    if timeout_factor.is_some_and(|f| !(f.is_finite() && f > 0.0)) {
        return Err(format!("--timeout-factor must be positive\n{usage}"));
    }
    if app.is_none() && (fail_prob > 0.0 || timeout_factor.is_some()) {
        return Err(format!(
            "--fail-prob/--timeout-factor only apply to --app mode\n{usage}"
        ));
    }
    if workers == 0 || batch == 0 {
        return Err(format!("--workers and --batch must be positive\n{usage}"));
    }
    if threads == Some(0) {
        return Err(format!("--threads must be positive\n{usage}"));
    }
    if checkpoint_every == 0 {
        return Err(format!("--checkpoint-every must be positive\n{usage}"));
    }
    Ok(CliOptions {
        space_path,
        command,
        app,
        budget,
        seed,
        measure,
        init_samples,
        max_retries,
        fail_prob,
        timeout_factor,
        trace_out,
        log_level,
        metrics_summary,
        metrics_out,
        diag,
        strict_health,
        profile_out,
        workers,
        batch,
        surrogate,
        checkpoint_out,
        checkpoint_every,
        resume_from,
        pipeline,
        threads,
    })
}

/// Runs one objective evaluation by executing the rendered command.
pub fn evaluate_command(rendered: &str, measure: Measure) -> Result<f64, String> {
    let start = std::time::Instant::now();
    let output = std::process::Command::new("sh")
        .arg("-c")
        .arg(rendered)
        .output()
        .map_err(|e| format!("failed to spawn '{rendered}': {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "command failed ({}): {rendered}\n{}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    match measure {
        Measure::Time => Ok(start.elapsed().as_secs_f64()),
        Measure::Stdout => {
            let stdout = String::from_utf8_lossy(&output.stdout);
            stdout
                .lines()
                .rev()
                .find(|l| !l.trim().is_empty())
                .and_then(|l| l.trim().parse::<f64>().ok())
                .ok_or_else(|| {
                    format!("last stdout line of '{rendered}' is not a number:\n{stdout}")
                })
        }
    }
}

/// Renders a configuration as `name=value` pairs (app-mode report format).
pub fn render_config(cfg: &Configuration, space: &ParameterSpace) -> String {
    space
        .params()
        .iter()
        .enumerate()
        .map(|(i, def)| {
            let value = match cfg.value(i) {
                crate::space::ParamValue::Index(idx) => def.values()[idx].to_string(),
                crate::space::ParamValue::Real(x) => format!("{x}"),
            };
            format!("{}={value}", def.name())
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The observability tee: JSONL trace file, stderr logger, metrics
/// registry, diagnostics watchdog, and span profiler, each only if
/// requested. With none requested the recorder is `None` and the tuner
/// skips instrumentation entirely.
struct Observability {
    recorder: Option<Arc<dyn Recorder>>,
    sink: Option<Arc<JsonlSink>>,
    registry: Arc<MetricsRegistry>,
    diag: Option<Arc<DiagnosticsRecorder>>,
    profile: Option<Arc<ProfileRecorder>>,
}

impl Observability {
    fn from_options(options: &CliOptions) -> Result<Self, String> {
        let mut tee = MultiRecorder::new();
        let sink = match &options.trace_out {
            Some(path) => {
                let sink = Arc::new(
                    JsonlSink::create(path)
                        .map_err(|e| format!("cannot create trace {path}: {e}"))?,
                );
                tee = tee.with(sink.clone());
                Some(sink)
            }
            None => None,
        };
        if options.log_level > Level::Off {
            tee = tee.with(Arc::new(StderrLogger::new(options.log_level)));
        }
        let registry = Arc::new(MetricsRegistry::new());
        // The event-derived metrics sink backs both the summary table and
        // the Prometheus exposition. (The tuner's direct-to-registry churn
        // counters stay gated on --metrics-summary below, so a
        // --metrics-out exposition derives from events alone and is
        // exactly reproducible from the trace.)
        if options.metrics_summary || options.metrics_out.is_some() {
            tee = tee.with(Arc::new(MetricsRecorder::new(registry.clone())));
        }
        let mut diag = None;
        if options.diag || options.strict_health {
            let d = Arc::new(DiagnosticsRecorder::new());
            tee = tee.with(d.clone());
            diag = Some(d);
        }
        let mut profile = None;
        if options.profile_out.is_some() {
            let p = Arc::new(ProfileRecorder::new());
            tee = tee.with(p.clone());
            profile = Some(p);
        }
        let recorder: Option<Arc<dyn Recorder>> = if tee.is_empty() {
            None
        } else {
            Some(Arc::new(tee))
        };
        Ok(Self {
            recorder,
            sink,
            registry,
            diag,
            profile,
        })
    }

    /// Post-run epilogue: re-emits watchdog alerts into the full tee (so
    /// the trace self-describes its health verdict), flushes the trace,
    /// prints the requested reports, and writes the Prometheus/profile
    /// output files. Returns the alerts for `--strict-health` handling.
    fn finish(&self, options: &CliOptions) -> Result<Vec<HealthAlert>, String> {
        let alerts = self.diag.as_ref().map(|d| d.alerts()).unwrap_or_default();
        if let (Some(recorder), false) = (&self.recorder, alerts.is_empty()) {
            for alert in &alerts {
                recorder.record(&Event::HealthAlert(alert.clone()));
            }
        }
        if let Some(sink) = &self.sink {
            Recorder::flush(sink.as_ref());
        }
        if options.metrics_summary {
            println!(
                "\n== metrics summary ==\n{}",
                self.registry.render_summary()
            );
        }
        if let Some(diag) = &self.diag {
            if options.diag {
                println!("\n== diagnostics ==\n{}", diag.summary().render());
            }
        }
        if let Some(path) = &options.metrics_out {
            std::fs::write(path, self.registry.render_prometheus())
                .map_err(|e| format!("cannot write metrics {path}: {e}"))?;
        }
        if let (Some(path), Some(profile)) = (&options.profile_out, &self.profile) {
            std::fs::write(path, profile.profile().folded())
                .map_err(|e| format!("cannot write profile {path}: {e}"))?;
        }
        Ok(alerts)
    }
}

/// The whole CLI flow; returns (best rendered command or configuration,
/// best objective). Fails when every trial in the budget failed.
pub fn run(options: &CliOptions) -> Result<(String, f64), String> {
    run_with_health(options).map(|(best, _)| best)
}

/// [`run`], also surfacing the diagnostics watchdog's findings so the
/// binary can turn them into a `--strict-health` exit code.
pub fn run_with_health(options: &CliOptions) -> Result<((String, f64), Vec<HealthAlert>), String> {
    if let Some(n) = options.threads {
        // The vendored rayon sizes its per-call pools from this variable,
        // so setting it here pins every vectorized sweep in the process.
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    }
    match &options.app {
        Some(app) => run_app_mode(options, app),
        None => run_command_mode(options),
    }
}

/// Builds the tuner for a run: fresh, or resumed from `--resume-from`
/// (a checkpoint snapshot, falling back to replaying a JSONL trace), with
/// `--checkpoint-out` snapshotting attached either way. Resume provenance
/// goes to stderr so stdout reports stay diffable against an
/// uninterrupted run.
fn build_tuner(
    space: ParameterSpace,
    tuner_options: TunerOptions,
    options: &CliOptions,
) -> Result<Tuner, String> {
    let mut tuner = match &options.resume_from {
        Some(path) => {
            let contents = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --resume-from {path}: {e}"))?;
            let tuner = match TunerCheckpoint::from_json(&contents) {
                Ok(snapshot) => Tuner::resume_from_checkpoint(space, tuner_options, &snapshot)
                    .map_err(|e| format!("cannot resume from snapshot {path}: {e}"))?,
                // Not a snapshot: treat it as a JSONL trace and replay it.
                Err(_) => Tuner::resume_from_trace(space, tuner_options, &contents).map_err(
                    |e| format!("cannot resume from {path}: not a checkpoint snapshot, and trace replay failed: {e}"),
                )?,
            };
            let history = tuner.history();
            eprintln!(
                "hiperbot: resuming from {path}: {} trials done ({} observations, {} failures)",
                history.trials(),
                history.len(),
                history.n_failures()
            );
            tuner
        }
        None => Tuner::new(space, tuner_options),
    };
    if let Some(out) = &options.checkpoint_out {
        tuner.set_checkpointing(CheckpointPolicy::new(out, options.checkpoint_every));
    }
    Ok(tuner)
}

/// Command mode: tune an external program via its command template.
fn run_command_mode(options: &CliOptions) -> Result<((String, f64), Vec<HealthAlert>), String> {
    let json = std::fs::read_to_string(&options.space_path)
        .map_err(|e| format!("cannot read {}: {e}", options.space_path))?;
    let spec = SpaceSpec::from_json(&json)?;
    let space = spec.build()?;

    // Continuous spaces batch through the vectorized Proposal engine;
    // discrete spaces through Ranking — both with constant-liar fantasies.
    // `--pipeline on` always takes the batch path: the pipelined driver
    // needs a batch evaluator to overlap with, and batch=1 stays
    // bit-identical to the serial algorithm.
    let parallel = options.workers > 1 || options.batch > 1 || options.pipeline;
    let strategy = if spec.has_continuous() {
        SelectionStrategy::Proposal { candidates: 32 }
    } else {
        SelectionStrategy::Ranking
    };
    let tuner_options = TunerOptions::default()
        .with_seed(options.seed)
        .with_init_samples(options.init_samples)
        .with_strategy(strategy)
        .with_surrogate_mode(options.surrogate);
    let mut tuner = build_tuner(space.clone(), tuner_options, options)?;

    let obs = Observability::from_options(options)?;
    if let Some(recorder) = &obs.recorder {
        tuner.set_recorder(Arc::clone(recorder));
    }
    if options.metrics_summary {
        tuner.set_metrics(obs.registry.clone());
    }

    let policy = RetryPolicy::default()
        .with_max_retries(options.max_retries)
        .with_seed(options.seed);
    let evaluate = |cfg: &Configuration| {
        let rendered = render_command(&options.command, cfg, &space);
        match evaluate_command(&rendered, options.measure) {
            Ok(y) => {
                eprintln!("  {rendered} -> {y}");
                EvalOutcome::Ok(y)
            }
            Err(e) => {
                eprintln!("  {rendered} -> FAILED");
                eprintln!("warning: {e}");
                EvalOutcome::Failed { reason: e }
            }
        }
    };
    let best = if parallel {
        // Parallel path: constant-liar batch suggestion + worker pool.
        // `workers == batch == 1` never lands here, so the serial path
        // below stays bit-identical to the pre-batch CLI.
        let mut exec = BatchExecutor::new(
            |cfg: &Configuration, _trial: u64, _attempt: u32| evaluate(cfg),
            options.workers,
        )
        .with_policy(policy)
        .with_sleeper(ThreadSleeper);
        if let Some(recorder) = &obs.recorder {
            exec = exec.with_recorder(Arc::clone(recorder));
        }
        if options.metrics_summary {
            exec = exec.with_registry(obs.registry.clone());
        }
        if options.pipeline {
            tuner.run_batch_pipelined(options.budget, options.batch, |cfgs, base| {
                exec.evaluate_batch(cfgs, base)
            })
        } else {
            tuner.run_batch_fallible(options.budget, options.batch, |cfgs, base| {
                exec.evaluate_batch(cfgs, base)
            })
        }
    } else {
        let mut retrying =
            RetryingObjective::new(|cfg: &Configuration, _attempt: u32| evaluate(cfg), policy)
                .with_sleeper(ThreadSleeper);
        if let Some(recorder) = &obs.recorder {
            retrying = retrying.with_recorder(Arc::clone(recorder));
        }
        tuner.run_fallible(options.budget, |cfg| retrying.evaluate(cfg))
    };
    let best =
        best.ok_or_else(|| "every evaluation in the budget failed; nothing to report".to_string())?;
    report_failures(&tuner);
    let alerts = obs.finish(options)?;
    Ok((
        (
            render_command(&options.command, &best.config, &space),
            best.objective,
        ),
        alerts,
    ))
}

/// App mode: tune a built-in simulated dataset with optional deterministic
/// fault injection.
fn run_app_mode(
    options: &CliOptions,
    app: &str,
) -> Result<((String, f64), Vec<HealthAlert>), String> {
    use crate::apps::Scale;
    let dataset = match app {
        "kripke" | "kripke-exec" => crate::apps::kripke::exec_dataset(Scale::Target),
        "kripke-energy" => crate::apps::kripke::energy_dataset(Scale::Target),
        "hypre" => crate::apps::hypre::dataset(Scale::Target),
        "lulesh" => crate::apps::lulesh::dataset(Scale::Target),
        "openatom" => crate::apps::openatom::dataset(Scale::Target),
        other => {
            return Err(format!(
                "unknown app '{other}' (expected kripke, kripke-energy, hypre, lulesh, openatom)"
            ))
        }
    };
    let space = dataset.space().clone();

    let mut model = FaultModel::new(options.seed, options.fail_prob);
    if let Some(factor) = options.timeout_factor {
        model = model.with_timeout(factor * dataset.percentile_value(0.5));
    }

    let tuner_options = TunerOptions::default()
        .with_seed(options.seed)
        .with_init_samples(options.init_samples)
        .with_strategy(SelectionStrategy::Ranking)
        .with_surrogate_mode(options.surrogate);
    let mut tuner = build_tuner(space.clone(), tuner_options, options)?;

    let obs = Observability::from_options(options)?;
    if let Some(recorder) = &obs.recorder {
        tuner.set_recorder(Arc::clone(recorder));
    }
    if options.metrics_summary {
        tuner.set_metrics(obs.registry.clone());
    }

    let policy = RetryPolicy::default()
        .with_max_retries(options.max_retries)
        .with_seed(options.seed);
    // Simulated evaluations: backoffs are recorded, not slept (the
    // default NoopSleeper, in both the serial and parallel paths).
    let best = if options.workers > 1 || options.batch > 1 || options.pipeline {
        let mut exec = BatchExecutor::new(
            |cfg: &Configuration, _trial: u64, attempt: u32| {
                outcome_from_sim(dataset.evaluate_outcome(cfg, &model, attempt))
            },
            options.workers,
        )
        .with_policy(policy);
        if let Some(recorder) = &obs.recorder {
            exec = exec.with_recorder(Arc::clone(recorder));
        }
        if options.metrics_summary {
            exec = exec.with_registry(obs.registry.clone());
        }
        if options.pipeline {
            tuner.run_batch_pipelined(options.budget, options.batch, |cfgs, base| {
                exec.evaluate_batch(cfgs, base)
            })
        } else {
            tuner.run_batch_fallible(options.budget, options.batch, |cfgs, base| {
                exec.evaluate_batch(cfgs, base)
            })
        }
    } else {
        let mut retrying = RetryingObjective::new(
            |cfg: &Configuration, attempt: u32| {
                outcome_from_sim(dataset.evaluate_outcome(cfg, &model, attempt))
            },
            policy,
        );
        if let Some(recorder) = &obs.recorder {
            retrying = retrying.with_recorder(Arc::clone(recorder));
        }
        tuner.run_fallible(options.budget, |cfg| retrying.evaluate(cfg))
    };
    let best =
        best.ok_or_else(|| "every evaluation in the budget failed; nothing to report".to_string())?;
    report_failures(&tuner);
    let alerts = obs.finish(options)?;
    Ok((
        (render_config(&best.config, &space), best.objective),
        alerts,
    ))
}

/// Prints a one-line summary of permanent failures and Proposal-mode
/// stalls after a run, so quarantined trials and budget-free duplicate
/// iterations are visible without a trace file.
fn report_failures(tuner: &Tuner) {
    let history = tuner.history();
    let n = history.n_failures();
    if n > 0 {
        eprintln!(
            "warning: {n} of {} trials permanently failed",
            history.trials()
        );
    }
    if tuner.stalls() > 0 {
        eprintln!(
            "warning: {} proposal iterations stalled on duplicate suggestions",
            tuner.stalls()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "params": [
            {"type": "ints", "name": "threads", "values": [1, 2, 4]},
            {"type": "categorical", "name": "solver", "values": ["amg", "pcg"]},
            {"type": "continuous", "name": "alpha", "lo": 0.0, "hi": 1.0}
        ]
    }"#;

    #[test]
    fn spec_parses_and_builds() {
        let spec = SpaceSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.params.len(), 3);
        assert!(spec.has_continuous());
        let space = spec.build().unwrap();
        assert_eq!(space.n_params(), 3);
        assert_eq!(space.param_index("solver"), Some(1));
    }

    #[test]
    fn bad_spec_is_an_error() {
        assert!(SpaceSpec::from_json("{}").is_err());
        assert!(SpaceSpec::from_json("not json").is_err());
        // empty space fails at build
        let spec = SpaceSpec::from_json(r#"{"params": []}"#).unwrap();
        assert!(spec.build().is_err());
    }

    #[test]
    fn command_rendering_substitutes_all_placeholders() {
        let spec = SpaceSpec::from_json(SPEC).unwrap();
        let space = spec.build().unwrap();
        let cfg = Configuration::new(vec![
            crate::space::ParamValue::Index(2),
            crate::space::ParamValue::Index(1),
            crate::space::ParamValue::Real(0.25),
        ]);
        let cmd = render_command("./run -t {threads} -s {solver} -a {alpha}", &cfg, &space);
        assert_eq!(cmd, "./run -t 4 -s pcg -a 0.25");
    }

    #[test]
    fn arg_parsing_happy_path() {
        let args: Vec<String> = [
            "--space",
            "s.json",
            "--command",
            "echo 1",
            "--budget",
            "9",
            "--seed",
            "3",
            "--measure",
            "time",
            "--init",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_args(&args).unwrap();
        assert_eq!(o.space_path, "s.json");
        assert_eq!(o.budget, 9);
        assert_eq!(o.seed, 3);
        assert_eq!(o.init_samples, 4);
        assert_eq!(o.measure, Measure::Time);
        // observability flags default off
        assert_eq!(o.trace_out, None);
        assert_eq!(o.log_level, Level::Off);
        assert!(!o.metrics_summary);
    }

    #[test]
    fn observability_flags_parse() {
        let args: Vec<String> = [
            "--space",
            "s.json",
            "--command",
            "echo 1",
            "--trace-out",
            "/tmp/t.jsonl",
            "--log-level",
            "debug",
            "--metrics-summary",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_args(&args).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(o.log_level, Level::Debug);
        assert!(o.metrics_summary);

        let bad: Vec<String> = ["--space", "s", "--command", "c", "--log-level", "loud"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&bad).is_err());
    }

    #[test]
    fn arg_parsing_rejects_bad_input() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(parse_args(&to_args(&["--space"])).is_err()); // missing value
        assert!(parse_args(&to_args(&["--bogus", "x"])).is_err());
        assert!(parse_args(&to_args(&[
            "--space",
            "s",
            "--command",
            "c",
            "--budget",
            "no"
        ]))
        .is_err());
        assert!(parse_args(&to_args(&["--command", "c"])).is_err()); // no space
        assert!(parse_args(&to_args(&["--space", "s"])).is_err()); // no command
    }

    #[test]
    fn evaluate_command_parses_stdout() {
        let y = evaluate_command("echo 42.5", Measure::Stdout).unwrap();
        assert_eq!(y, 42.5);
        // multi-line: last non-empty line wins
        let y = evaluate_command("printf 'log line\\n3.25\\n'", Measure::Stdout).unwrap();
        assert_eq!(y, 3.25);
    }

    #[test]
    fn evaluate_command_time_measures_wall_clock() {
        let y = evaluate_command("sleep 0.05", Measure::Time).unwrap();
        assert!((0.05..1.0).contains(&y), "measured {y}");
    }

    #[test]
    fn evaluate_command_reports_failures() {
        assert!(evaluate_command("exit 3", Measure::Stdout).is_err());
        assert!(evaluate_command("echo not-a-number", Measure::Stdout).is_err());
    }

    #[test]
    fn end_to_end_cli_run_on_a_shell_objective() {
        // Objective: |threads - 2| computed in shell; optimum threads=2.
        let dir = std::env::temp_dir().join(format!("hiperbot-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("space.json");
        std::fs::write(
            &spec_path,
            r#"{"params": [{"type": "ints", "name": "threads", "values": [1, 2, 4, 8]}]}"#,
        )
        .unwrap();
        let options = CliOptions {
            space_path: spec_path.to_string_lossy().into_owned(),
            command: "echo $(( {threads} > 2 ? {threads} - 2 : 2 - {threads} ))".into(),
            budget: 4,
            seed: 1,
            init_samples: 4,
            ..CliOptions::default()
        };
        let (cmd, best) = run(&options).unwrap();
        assert_eq!(best, 0.0);
        assert!(cmd.contains("2"), "best command: {cmd}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_cli_run_writes_a_parseable_jsonl_trace() {
        use crate::obs::Event;
        let dir = std::env::temp_dir().join(format!("hiperbot-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("space.json");
        std::fs::write(
            &spec_path,
            r#"{"params": [
                {"type": "ints", "name": "a", "values": [0, 1, 2, 3, 4, 5]},
                {"type": "ints", "name": "b", "values": [0, 1, 2, 3, 4, 5]}
            ]}"#,
        )
        .unwrap();
        let trace_path = dir.join("trace.jsonl");
        let options = CliOptions {
            space_path: spec_path.to_string_lossy().into_owned(),
            command: "echo $(( {a} + {b} ))".into(),
            budget: 12,
            seed: 2,
            init_samples: 6,
            trace_out: Some(trace_path.to_string_lossy().into_owned()),
            metrics_summary: true,
            ..CliOptions::default()
        };
        let (_, best) = run(&options).unwrap();
        assert_eq!(best, 0.0);

        let text = std::fs::read_to_string(&trace_path).unwrap();
        let events: Vec<Event> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("trace line parses"))
            .collect();
        assert!(matches!(events.first(), Some(Event::RunHeader(_))));
        assert!(matches!(events.last(), Some(Event::RunFinished { .. })));
        let evals = events
            .iter()
            .filter(|e| matches!(e, Event::ObjectiveEvaluated { .. }))
            .count();
        assert_eq!(evals, 12);
        // 6 model-driven iterations, each with a fit and a selection
        for pat in [
            |e: &Event| matches!(e, Event::IterationStart { .. }),
            |e: &Event| matches!(e, Event::SurrogateFit { .. }),
            |e: &Event| matches!(e, Event::SelectionScored { .. }),
        ] {
            assert_eq!(events.iter().filter(|e| pat(e)).count(), 6);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn to_args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fault_flags_parse() {
        let o = parse_args(&to_args(&[
            "--app",
            "kripke",
            "--fail-prob",
            "0.2",
            "--max-retries",
            "2",
            "--timeout-factor",
            "3.0",
        ]))
        .unwrap();
        assert_eq!(o.app.as_deref(), Some("kripke"));
        assert_eq!(o.fail_prob, 0.2);
        assert_eq!(o.max_retries, 2);
        assert_eq!(o.timeout_factor, Some(3.0));
        // fault defaults: everything off
        let o = parse_args(&to_args(&["--space", "s", "--command", "c"])).unwrap();
        assert_eq!(o.app, None);
        assert_eq!(o.max_retries, 0);
        assert_eq!(o.fail_prob, 0.0);
        assert_eq!(o.timeout_factor, None);
        // --max-retries is a common flag, valid in command mode too
        let o = parse_args(&to_args(&[
            "--space",
            "s",
            "--command",
            "c",
            "--max-retries",
            "3",
        ]))
        .unwrap();
        assert_eq!(o.max_retries, 3);
    }

    #[test]
    fn parallel_flags_parse_and_validate() {
        let o = parse_args(&to_args(&[
            "--app",
            "kripke",
            "--workers",
            "4",
            "--batch",
            "8",
        ]))
        .unwrap();
        assert_eq!(o.workers, 4);
        assert_eq!(o.batch, 8);
        // defaults: serial
        let o = parse_args(&to_args(&["--app", "kripke"])).unwrap();
        assert_eq!((o.workers, o.batch), (1, 1));
        assert!(parse_args(&to_args(&["--app", "kripke", "--workers", "0"])).is_err());
        assert!(parse_args(&to_args(&["--app", "kripke", "--batch", "0"])).is_err());
        assert!(parse_args(&to_args(&["--app", "kripke", "--workers", "two"])).is_err());
    }

    #[test]
    fn pipeline_and_threads_flags_parse_and_validate() {
        let o = parse_args(&to_args(&[
            "--app",
            "kripke",
            "--pipeline",
            "on",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert!(o.pipeline);
        assert_eq!(o.threads, Some(4));
        let o = parse_args(&to_args(&["--app", "kripke", "--pipeline", "off"])).unwrap();
        assert!(!o.pipeline);
        // defaults: pipeline off, ambient threads
        let o = parse_args(&to_args(&["--app", "kripke"])).unwrap();
        assert!(!o.pipeline && o.threads.is_none());
        assert!(parse_args(&to_args(&["--app", "kripke", "--pipeline", "yes"])).is_err());
        assert!(parse_args(&to_args(&["--app", "kripke", "--threads", "0"])).is_err());
        assert!(parse_args(&to_args(&["--app", "kripke", "--threads", "many"])).is_err());
    }

    #[test]
    fn pipelined_app_run_matches_unpipelined() {
        // The tentpole contract at the CLI layer: --pipeline on changes
        // wall-clock, never results — across worker counts, with and
        // without fault injection.
        let run = |pipeline: bool, workers: usize, fail_prob: f64| {
            crate::cli::run(&CliOptions {
                app: Some("kripke".into()),
                budget: 40,
                seed: 11,
                init_samples: 16,
                batch: 4,
                workers,
                fail_prob,
                max_retries: if fail_prob > 0.0 { 1 } else { 0 },
                pipeline,
                ..CliOptions::default()
            })
            .unwrap()
        };
        for workers in [1usize, 4] {
            assert_eq!(
                run(true, workers, 0.0),
                run(false, workers, 0.0),
                "pipelined != unpipelined at {workers} workers"
            );
            assert_eq!(
                run(true, workers, 0.3),
                run(false, workers, 0.3),
                "pipelined != unpipelined under faults at {workers} workers"
            );
        }
    }

    #[test]
    fn diagnostics_flags_parse() {
        let o = parse_args(&to_args(&[
            "--app",
            "kripke",
            "--metrics-out",
            "/tmp/m.prom",
            "--diag",
            "--strict-health",
            "--profile-out",
            "/tmp/p.folded",
        ]))
        .unwrap();
        assert_eq!(o.metrics_out.as_deref(), Some("/tmp/m.prom"));
        assert!(o.diag);
        assert!(o.strict_health);
        assert_eq!(o.profile_out.as_deref(), Some("/tmp/p.folded"));
        // defaults: everything off
        let o = parse_args(&to_args(&["--app", "kripke"])).unwrap();
        assert!(!o.diag && !o.strict_health);
        assert!(o.metrics_out.is_none() && o.profile_out.is_none());
    }

    #[test]
    fn strict_health_surfaces_watchdog_alerts() {
        // A high injected failure rate with no retries must trip the
        // failure_rate watchdog; the same run without faults stays silent.
        let options = CliOptions {
            app: Some("kripke".into()),
            budget: 30,
            seed: 7,
            init_samples: 10,
            fail_prob: 0.6,
            strict_health: true,
            ..CliOptions::default()
        };
        let (_, alerts) = run_with_health(&options).unwrap();
        assert!(
            alerts.iter().any(|a| a.code == "failure_rate"),
            "{alerts:?}"
        );
        let healthy = CliOptions {
            fail_prob: 0.0,
            ..options
        };
        let (_, alerts) = run_with_health(&healthy).unwrap();
        assert!(alerts.is_empty(), "{alerts:?}");
    }

    #[test]
    fn diag_run_writes_prometheus_and_profile_files() {
        use crate::obs::validate_prometheus;
        let dir = std::env::temp_dir().join(format!("hiperbot-cli-diag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prom_path = dir.join("metrics.prom");
        let folded_path = dir.join("profile.folded");
        let options = CliOptions {
            app: Some("kripke".into()),
            budget: 20,
            seed: 4,
            init_samples: 8,
            metrics_out: Some(prom_path.to_string_lossy().into_owned()),
            profile_out: Some(folded_path.to_string_lossy().into_owned()),
            diag: true,
            ..CliOptions::default()
        };
        run(&options).unwrap();
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        let stats = validate_prometheus(&prom).unwrap();
        assert!(stats.families > 0 && stats.samples > 0, "{prom}");
        assert!(prom.contains("hiperbot_tuner_iterations_total"), "{prom}");
        let folded = std::fs::read_to_string(&folded_path).unwrap();
        assert!(folded.contains("run;tuner.fit "), "{folded}");
        assert!(folded.contains("run;tuner.evaluate "), "{folded}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn surrogate_flag_parses() {
        let o = parse_args(&to_args(&["--app", "kripke"])).unwrap();
        assert_eq!(o.surrogate, SurrogateMode::Incremental); // default
        let o = parse_args(&to_args(&["--app", "kripke", "--surrogate", "full"])).unwrap();
        assert_eq!(o.surrogate, SurrogateMode::Full);
        let o = parse_args(&to_args(&["--app", "kripke", "--surrogate", "incremental"])).unwrap();
        assert_eq!(o.surrogate, SurrogateMode::Incremental);
        assert!(parse_args(&to_args(&["--app", "kripke", "--surrogate", "lazy"])).is_err());
    }

    #[test]
    fn surrogate_modes_agree_end_to_end() {
        // The bit-identity contract at the CLI layer: an incremental-engine
        // run and a from-scratch-refit run report the same best, faults,
        // batching, and retries included.
        let base = CliOptions {
            app: Some("kripke".into()),
            budget: 24,
            seed: 9,
            init_samples: 8,
            max_retries: 1,
            fail_prob: 0.15,
            workers: 2,
            batch: 4,
            ..CliOptions::default()
        };
        let incremental = run(&base).unwrap();
        let full = run(&CliOptions {
            surrogate: SurrogateMode::Full,
            ..base.clone()
        })
        .unwrap();
        assert_eq!(incremental, full);
    }

    #[test]
    fn app_mode_parallel_run_matches_serial_batch_run() {
        // The determinism contract the CI parallel-smoke job relies on:
        // at a fixed --batch, every worker count yields the same result.
        let base = CliOptions {
            app: Some("kripke".into()),
            budget: 24,
            seed: 5,
            init_samples: 8,
            max_retries: 1,
            fail_prob: 0.15,
            batch: 4,
            ..CliOptions::default()
        };
        let serial = run(&base).unwrap();
        for workers in [2, 4] {
            let options = CliOptions {
                workers,
                ..base.clone()
            };
            assert_eq!(run(&options).unwrap(), serial, "workers = {workers}");
        }
    }

    #[test]
    fn command_mode_accepts_parallel_flags_on_continuous_spaces() {
        // Continuous spaces batch through the vectorized Proposal engine:
        // --workers/--batch are accepted, batch=1 through the parallel
        // path matches the pure serial path exactly, and at a fixed batch
        // every worker count yields the same result.
        let dir = std::env::temp_dir().join(format!("hiperbot-cli-cont-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("space.json");
        std::fs::write(
            &spec_path,
            r#"{"params": [{"type": "continuous", "name": "alpha", "lo": 0.0, "hi": 1.0}]}"#,
        )
        .unwrap();
        let base = CliOptions {
            space_path: spec_path.to_string_lossy().into_owned(),
            command: "echo {alpha}".into(),
            budget: 8,
            seed: 1,
            init_samples: 4,
            ..CliOptions::default()
        };
        let serial = run(&base).unwrap();
        let batched_serial = run(&CliOptions {
            workers: 2,
            batch: 1,
            ..base.clone()
        })
        .unwrap();
        assert_eq!(batched_serial, serial, "batch=1 must match the serial path");
        let batch4 = run(&CliOptions {
            workers: 1,
            batch: 4,
            ..base.clone()
        })
        .unwrap();
        for workers in [2, 4] {
            let options = CliOptions {
                workers,
                batch: 4,
                ..base.clone()
            };
            assert_eq!(run(&options).unwrap(), batch4, "workers = {workers}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn command_mode_parallel_end_to_end() {
        let dir = std::env::temp_dir().join(format!("hiperbot-cli-par-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("space.json");
        std::fs::write(
            &spec_path,
            r#"{"params": [{"type": "ints", "name": "threads", "values": [1, 2, 4, 8]}]}"#,
        )
        .unwrap();
        let options = CliOptions {
            space_path: spec_path.to_string_lossy().into_owned(),
            command: "echo $(( {threads} > 2 ? {threads} - 2 : 2 - {threads} ))".into(),
            budget: 4,
            seed: 1,
            init_samples: 4,
            workers: 4,
            batch: 4,
            ..CliOptions::default()
        };
        let (cmd, best) = run(&options).unwrap();
        assert_eq!(best, 0.0);
        assert!(cmd.contains("2"), "best command: {cmd}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_flags_reject_bad_combinations() {
        // fault injection flags require app mode
        assert!(parse_args(&to_args(&[
            "--space",
            "s",
            "--command",
            "c",
            "--fail-prob",
            "0.2"
        ]))
        .is_err());
        assert!(parse_args(&to_args(&[
            "--space",
            "s",
            "--command",
            "c",
            "--timeout-factor",
            "2.0"
        ]))
        .is_err());
        // app mode excludes the command-mode flags
        assert!(parse_args(&to_args(&["--app", "kripke", "--space", "s"])).is_err());
        assert!(parse_args(&to_args(&["--app", "kripke", "--command", "c"])).is_err());
        // out-of-range values
        assert!(parse_args(&to_args(&["--app", "kripke", "--fail-prob", "1.5"])).is_err());
        assert!(parse_args(&to_args(&["--app", "kripke", "--fail-prob", "-0.1"])).is_err());
        assert!(parse_args(&to_args(&["--app", "kripke", "--timeout-factor", "0"])).is_err());
        assert!(parse_args(&to_args(&["--app", "kripke", "--timeout-factor", "inf"])).is_err());
    }

    #[test]
    fn app_mode_end_to_end_with_fault_injection() {
        let options = CliOptions {
            app: Some("kripke".into()),
            budget: 30,
            seed: 7,
            init_samples: 10,
            max_retries: 2,
            fail_prob: 0.2,
            timeout_factor: Some(4.0),
            ..CliOptions::default()
        };
        let (cfg, best) = run(&options).unwrap();
        assert!(best.is_finite() && best > 0.0, "best objective: {best}");
        assert!(cfg.contains('='), "rendered config: {cfg}");
        // Deterministic under faults: the same options reproduce the run,
        // retries included.
        let (cfg2, best2) = run(&options).unwrap();
        assert_eq!(cfg, cfg2);
        assert_eq!(best, best2);
    }

    #[test]
    fn app_mode_rejects_unknown_dataset() {
        let options = CliOptions {
            app: Some("nbody".into()),
            budget: 10,
            init_samples: 5,
            ..CliOptions::default()
        };
        let err = run(&options).unwrap_err();
        assert!(err.contains("unknown app"), "{err}");
    }

    #[test]
    fn command_mode_quarantines_failing_commands() {
        // The optimum (threads=2) always crashes; the tuner must survive the
        // failures and settle on the best *feasible* configuration instead of
        // panicking or reporting a sentinel.
        let dir = std::env::temp_dir().join(format!("hiperbot-cli-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("space.json");
        std::fs::write(
            &spec_path,
            r#"{"params": [{"type": "ints", "name": "threads", "values": [1, 2, 4, 8]}]}"#,
        )
        .unwrap();
        let options = CliOptions {
            space_path: spec_path.to_string_lossy().into_owned(),
            command: "if [ {threads} -eq 2 ]; then exit 1; fi; \
                      echo $(( {threads} > 2 ? {threads} - 2 : 2 - {threads} ))"
                .into(),
            budget: 8,
            seed: 3,
            init_samples: 4,
            ..CliOptions::default()
        };
        let (cmd, best) = run(&options).unwrap();
        // Best feasible: threads=1 or threads=4, both scoring 1 (never the
        // crashed optimum's 0, never a sentinel).
        assert_eq!(best, 1.0, "best command: {cmd}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn command_mode_reports_total_failure() {
        let dir = std::env::temp_dir().join(format!("hiperbot-cli-allfail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("space.json");
        std::fs::write(
            &spec_path,
            r#"{"params": [{"type": "ints", "name": "threads", "values": [1, 2]}]}"#,
        )
        .unwrap();
        let options = CliOptions {
            space_path: spec_path.to_string_lossy().into_owned(),
            command: "exit 1".into(),
            budget: 3,
            init_samples: 2,
            ..CliOptions::default()
        };
        let err = run(&options).unwrap_err();
        assert!(err.contains("every evaluation"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_flags_parse() {
        let args: Vec<String> = [
            "--app",
            "kripke",
            "--checkpoint-out",
            "snap.json",
            "--checkpoint-every",
            "5",
            "--resume-from",
            "old.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_args(&args).unwrap();
        assert_eq!(o.checkpoint_out.as_deref(), Some("snap.json"));
        assert_eq!(o.checkpoint_every, 5);
        assert_eq!(o.resume_from.as_deref(), Some("old.json"));

        let bad: Vec<String> = ["--app", "kripke", "--checkpoint-every", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&bad).unwrap_err().contains("--checkpoint-every"));
    }

    #[test]
    fn app_mode_resumes_from_a_checkpoint_to_the_uninterrupted_result() {
        let dir = std::env::temp_dir().join(format!("hiperbot-cli-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("snap.json").to_string_lossy().into_owned();
        let base = CliOptions {
            app: Some("kripke".into()),
            budget: 24,
            seed: 13,
            init_samples: 8,
            fail_prob: 0.15,
            ..CliOptions::default()
        };
        let uninterrupted = run(&base).unwrap();

        // "Crash" at trial 15 by running a truncated budget, then resume
        // from its final snapshot and finish the campaign.
        let partial = CliOptions {
            budget: 15,
            checkpoint_out: Some(snap.clone()),
            checkpoint_every: 5,
            ..base.clone()
        };
        run(&partial).unwrap();
        let resumed = run(&CliOptions {
            resume_from: Some(snap),
            ..base.clone()
        })
        .unwrap();
        assert_eq!(resumed, uninterrupted);

        // Identity mismatch is refused loudly, not silently retuned.
        let err = run(&CliOptions {
            resume_from: Some(dir.join("snap.json").to_string_lossy().into_owned()),
            seed: 14,
            ..base.clone()
        })
        .unwrap_err();
        assert!(err.contains("seed"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn app_mode_resumes_from_a_trace_when_no_snapshot_exists() {
        let dir = std::env::temp_dir().join(format!("hiperbot-cli-tres-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl").to_string_lossy().into_owned();
        let base = CliOptions {
            app: Some("kripke".into()),
            budget: 24,
            seed: 21,
            init_samples: 8,
            ..CliOptions::default()
        };
        let uninterrupted = run(&base).unwrap();

        let partial = CliOptions {
            budget: 15,
            trace_out: Some(trace.clone()),
            ..base.clone()
        };
        run(&partial).unwrap();
        let resumed = run(&CliOptions {
            resume_from: Some(trace),
            ..base.clone()
        })
        .unwrap();
        assert_eq!(resumed, uninterrupted);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
