//! # HiPerBOt — Bayesian-optimization auto-tuning for HPC applications
//!
//! A from-scratch Rust reproduction of *"Auto-tuning Parameter Choices in
//! HPC Applications using Bayesian Optimization"* (Menon, Bhatele, Gamblin —
//! IPDPS 2020). This facade crate re-exports the workspace's public API:
//!
//! - [`space`] — parameter spaces, configurations, constraints.
//! - [`stats`] — histograms, KDE, quantiles, divergences, linear algebra.
//! - [`perfsim`] — analytic HPC performance models (roofline, OpenMP
//!   scaling, communication, DVFS power capping).
//! - [`apps`] — the four application simulators (Kripke, HYPRE, LULESH,
//!   OpenAtom) and their exhaustively evaluated datasets.
//! - [`core`] — the HiPerBOt tuner itself: TPE surrogate, expected
//!   improvement, transfer learning, parameter-importance analysis.
//! - [`nn`] — the neural-network substrate behind the PerfNet baseline.
//! - [`baselines`] — GEIST, random search, exhaustive best, PerfNet, GP-EI.
//! - [`eval`] — metrics, repeated-trial runner, and the paper's experiments.
//! - [`obs`] — tuner-loop observability: structured trace events, recorder
//!   sinks (JSONL, stderr), latency metrics, and offline trace replay.
//! - [`cli`] — the `hiperbot` command-line autotuner (JSON space spec +
//!   command template).
//!
//! ## Quickstart
//!
//! ```
//! use hiperbot::core::{Tuner, TunerOptions};
//! use hiperbot::space::{ParameterSpace, ParamDef, Domain};
//!
//! // A toy 2-parameter space.
//! let space = ParameterSpace::builder()
//!     .param(ParamDef::new("threads", Domain::discrete_ints(&[1, 2, 4, 8, 16])))
//!     .param(ParamDef::new("block", Domain::discrete_ints(&[32, 64, 128, 256])))
//!     .build()
//!     .unwrap();
//!
//! // Any closure can be the expensive objective. `numeric_value` resolves
//! // a discrete value's index to its actual level (e.g. 8 threads).
//! let defs = space.params().to_vec();
//! let objective = |cfg: &hiperbot::space::Configuration| {
//!     let t = cfg.numeric_value(0, &defs[0]);
//!     let b = cfg.numeric_value(1, &defs[1]);
//!     (t - 8.0).abs() + (b - 128.0).abs() / 32.0
//! };
//!
//! // The toy space has only 5 × 4 = 20 configurations, so a 20-evaluation
//! // budget sweeps it entirely and the optimum (8 threads, block 128) is
//! // found regardless of seed. Real spaces are far larger than the budget;
//! // see the `eval` crate for the paper's experiments.
//! let mut tuner = Tuner::new(space.clone(), TunerOptions::default().with_seed(42));
//! let best = tuner.run(20, objective);
//! assert!(best.objective < 1.0);
//! ```

pub mod cli;

pub use hiperbot_apps as apps;
pub use hiperbot_baselines as baselines;
pub use hiperbot_core as core;
pub use hiperbot_eval as eval;
pub use hiperbot_nn as nn;
pub use hiperbot_obs as obs;
pub use hiperbot_perfsim as perfsim;
pub use hiperbot_space as space;
pub use hiperbot_stats as stats;
