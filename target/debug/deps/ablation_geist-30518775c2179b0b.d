/root/repo/target/debug/deps/ablation_geist-30518775c2179b0b.d: crates/bench/src/bin/ablation_geist.rs

/root/repo/target/debug/deps/ablation_geist-30518775c2179b0b: crates/bench/src/bin/ablation_geist.rs

crates/bench/src/bin/ablation_geist.rs:
