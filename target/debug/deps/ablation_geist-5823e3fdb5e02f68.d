/root/repo/target/debug/deps/ablation_geist-5823e3fdb5e02f68.d: crates/bench/src/bin/ablation_geist.rs

/root/repo/target/debug/deps/ablation_geist-5823e3fdb5e02f68: crates/bench/src/bin/ablation_geist.rs

crates/bench/src/bin/ablation_geist.rs:
