/root/repo/target/debug/deps/ablation_geist-a4383868eecad9ec.d: crates/bench/src/bin/ablation_geist.rs

/root/repo/target/debug/deps/ablation_geist-a4383868eecad9ec: crates/bench/src/bin/ablation_geist.rs

crates/bench/src/bin/ablation_geist.rs:
