/root/repo/target/debug/deps/ablation_importance-0c2c6fc1feb4c724.d: crates/bench/src/bin/ablation_importance.rs

/root/repo/target/debug/deps/ablation_importance-0c2c6fc1feb4c724: crates/bench/src/bin/ablation_importance.rs

crates/bench/src/bin/ablation_importance.rs:
