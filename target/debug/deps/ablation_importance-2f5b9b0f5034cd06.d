/root/repo/target/debug/deps/ablation_importance-2f5b9b0f5034cd06.d: crates/bench/src/bin/ablation_importance.rs

/root/repo/target/debug/deps/ablation_importance-2f5b9b0f5034cd06: crates/bench/src/bin/ablation_importance.rs

crates/bench/src/bin/ablation_importance.rs:
