/root/repo/target/debug/deps/ablation_importance-3c43edcb7a6a188d.d: crates/bench/src/bin/ablation_importance.rs

/root/repo/target/debug/deps/ablation_importance-3c43edcb7a6a188d: crates/bench/src/bin/ablation_importance.rs

crates/bench/src/bin/ablation_importance.rs:
