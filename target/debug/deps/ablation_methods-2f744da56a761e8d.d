/root/repo/target/debug/deps/ablation_methods-2f744da56a761e8d.d: crates/bench/src/bin/ablation_methods.rs

/root/repo/target/debug/deps/ablation_methods-2f744da56a761e8d: crates/bench/src/bin/ablation_methods.rs

crates/bench/src/bin/ablation_methods.rs:
