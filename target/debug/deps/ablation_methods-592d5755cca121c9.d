/root/repo/target/debug/deps/ablation_methods-592d5755cca121c9.d: crates/bench/src/bin/ablation_methods.rs

/root/repo/target/debug/deps/ablation_methods-592d5755cca121c9: crates/bench/src/bin/ablation_methods.rs

crates/bench/src/bin/ablation_methods.rs:
