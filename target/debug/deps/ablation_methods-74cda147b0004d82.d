/root/repo/target/debug/deps/ablation_methods-74cda147b0004d82.d: crates/bench/src/bin/ablation_methods.rs

/root/repo/target/debug/deps/ablation_methods-74cda147b0004d82: crates/bench/src/bin/ablation_methods.rs

crates/bench/src/bin/ablation_methods.rs:
