/root/repo/target/debug/deps/ablation_transfer_weight-35b14cea13d7c606.d: crates/bench/src/bin/ablation_transfer_weight.rs

/root/repo/target/debug/deps/ablation_transfer_weight-35b14cea13d7c606: crates/bench/src/bin/ablation_transfer_weight.rs

crates/bench/src/bin/ablation_transfer_weight.rs:
