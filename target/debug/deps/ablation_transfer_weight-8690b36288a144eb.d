/root/repo/target/debug/deps/ablation_transfer_weight-8690b36288a144eb.d: crates/bench/src/bin/ablation_transfer_weight.rs

/root/repo/target/debug/deps/ablation_transfer_weight-8690b36288a144eb: crates/bench/src/bin/ablation_transfer_weight.rs

crates/bench/src/bin/ablation_transfer_weight.rs:
