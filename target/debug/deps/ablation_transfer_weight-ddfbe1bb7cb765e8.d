/root/repo/target/debug/deps/ablation_transfer_weight-ddfbe1bb7cb765e8.d: crates/bench/src/bin/ablation_transfer_weight.rs

/root/repo/target/debug/deps/ablation_transfer_weight-ddfbe1bb7cb765e8: crates/bench/src/bin/ablation_transfer_weight.rs

crates/bench/src/bin/ablation_transfer_weight.rs:
