/root/repo/target/debug/deps/baseline_contracts-946f75077dcd9cd2.d: crates/baselines/tests/baseline_contracts.rs

/root/repo/target/debug/deps/baseline_contracts-946f75077dcd9cd2: crates/baselines/tests/baseline_contracts.rs

crates/baselines/tests/baseline_contracts.rs:
