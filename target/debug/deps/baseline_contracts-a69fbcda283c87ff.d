/root/repo/target/debug/deps/baseline_contracts-a69fbcda283c87ff.d: crates/baselines/tests/baseline_contracts.rs

/root/repo/target/debug/deps/baseline_contracts-a69fbcda283c87ff: crates/baselines/tests/baseline_contracts.rs

crates/baselines/tests/baseline_contracts.rs:
