/root/repo/target/debug/deps/bench_selection-570519408a3421eb.d: crates/bench/src/bin/bench_selection.rs

/root/repo/target/debug/deps/bench_selection-570519408a3421eb: crates/bench/src/bin/bench_selection.rs

crates/bench/src/bin/bench_selection.rs:
