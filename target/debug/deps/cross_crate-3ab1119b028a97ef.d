/root/repo/target/debug/deps/cross_crate-3ab1119b028a97ef.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-3ab1119b028a97ef: tests/cross_crate.rs

tests/cross_crate.rs:
