/root/repo/target/debug/deps/cross_crate-44d2f91f7e5c1a30.d: tests/cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate-44d2f91f7e5c1a30.rmeta: tests/cross_crate.rs Cargo.toml

tests/cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
