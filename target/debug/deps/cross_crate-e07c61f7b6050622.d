/root/repo/target/debug/deps/cross_crate-e07c61f7b6050622.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-e07c61f7b6050622: tests/cross_crate.rs

tests/cross_crate.rs:
