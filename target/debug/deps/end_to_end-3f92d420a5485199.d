/root/repo/target/debug/deps/end_to_end-3f92d420a5485199.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3f92d420a5485199: tests/end_to_end.rs

tests/end_to_end.rs:
