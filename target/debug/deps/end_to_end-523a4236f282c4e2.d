/root/repo/target/debug/deps/end_to_end-523a4236f282c4e2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-523a4236f282c4e2: tests/end_to_end.rs

tests/end_to_end.rs:
