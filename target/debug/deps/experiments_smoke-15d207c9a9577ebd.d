/root/repo/target/debug/deps/experiments_smoke-15d207c9a9577ebd.d: crates/eval/tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-15d207c9a9577ebd: crates/eval/tests/experiments_smoke.rs

crates/eval/tests/experiments_smoke.rs:
