/root/repo/target/debug/deps/experiments_smoke-f370d6c5b7720a6d.d: crates/eval/tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-f370d6c5b7720a6d: crates/eval/tests/experiments_smoke.rs

crates/eval/tests/experiments_smoke.rs:
