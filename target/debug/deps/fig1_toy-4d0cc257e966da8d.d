/root/repo/target/debug/deps/fig1_toy-4d0cc257e966da8d.d: crates/bench/src/bin/fig1_toy.rs

/root/repo/target/debug/deps/fig1_toy-4d0cc257e966da8d: crates/bench/src/bin/fig1_toy.rs

crates/bench/src/bin/fig1_toy.rs:
