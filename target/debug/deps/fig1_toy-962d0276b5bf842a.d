/root/repo/target/debug/deps/fig1_toy-962d0276b5bf842a.d: crates/bench/src/bin/fig1_toy.rs

/root/repo/target/debug/deps/fig1_toy-962d0276b5bf842a: crates/bench/src/bin/fig1_toy.rs

crates/bench/src/bin/fig1_toy.rs:
