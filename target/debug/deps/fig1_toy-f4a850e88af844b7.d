/root/repo/target/debug/deps/fig1_toy-f4a850e88af844b7.d: crates/bench/src/bin/fig1_toy.rs

/root/repo/target/debug/deps/fig1_toy-f4a850e88af844b7: crates/bench/src/bin/fig1_toy.rs

crates/bench/src/bin/fig1_toy.rs:
