/root/repo/target/debug/deps/fig2_kripke_exec-952600bb91b413d9.d: crates/bench/src/bin/fig2_kripke_exec.rs

/root/repo/target/debug/deps/fig2_kripke_exec-952600bb91b413d9: crates/bench/src/bin/fig2_kripke_exec.rs

crates/bench/src/bin/fig2_kripke_exec.rs:
