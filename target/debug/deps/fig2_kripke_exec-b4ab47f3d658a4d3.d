/root/repo/target/debug/deps/fig2_kripke_exec-b4ab47f3d658a4d3.d: crates/bench/src/bin/fig2_kripke_exec.rs

/root/repo/target/debug/deps/fig2_kripke_exec-b4ab47f3d658a4d3: crates/bench/src/bin/fig2_kripke_exec.rs

crates/bench/src/bin/fig2_kripke_exec.rs:
