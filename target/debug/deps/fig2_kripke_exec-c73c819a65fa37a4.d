/root/repo/target/debug/deps/fig2_kripke_exec-c73c819a65fa37a4.d: crates/bench/src/bin/fig2_kripke_exec.rs

/root/repo/target/debug/deps/fig2_kripke_exec-c73c819a65fa37a4: crates/bench/src/bin/fig2_kripke_exec.rs

crates/bench/src/bin/fig2_kripke_exec.rs:
