/root/repo/target/debug/deps/fig3_kripke_energy-a3b4cb55394b849e.d: crates/bench/src/bin/fig3_kripke_energy.rs

/root/repo/target/debug/deps/fig3_kripke_energy-a3b4cb55394b849e: crates/bench/src/bin/fig3_kripke_energy.rs

crates/bench/src/bin/fig3_kripke_energy.rs:
