/root/repo/target/debug/deps/fig3_kripke_energy-f09e75c2e0c259c2.d: crates/bench/src/bin/fig3_kripke_energy.rs

/root/repo/target/debug/deps/fig3_kripke_energy-f09e75c2e0c259c2: crates/bench/src/bin/fig3_kripke_energy.rs

crates/bench/src/bin/fig3_kripke_energy.rs:
