/root/repo/target/debug/deps/fig3_kripke_energy-f0d578104296f3bf.d: crates/bench/src/bin/fig3_kripke_energy.rs

/root/repo/target/debug/deps/fig3_kripke_energy-f0d578104296f3bf: crates/bench/src/bin/fig3_kripke_energy.rs

crates/bench/src/bin/fig3_kripke_energy.rs:
