/root/repo/target/debug/deps/fig4_hypre-056b4e82cb7f4af3.d: crates/bench/src/bin/fig4_hypre.rs

/root/repo/target/debug/deps/fig4_hypre-056b4e82cb7f4af3: crates/bench/src/bin/fig4_hypre.rs

crates/bench/src/bin/fig4_hypre.rs:
