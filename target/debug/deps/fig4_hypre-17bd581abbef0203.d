/root/repo/target/debug/deps/fig4_hypre-17bd581abbef0203.d: crates/bench/src/bin/fig4_hypre.rs

/root/repo/target/debug/deps/fig4_hypre-17bd581abbef0203: crates/bench/src/bin/fig4_hypre.rs

crates/bench/src/bin/fig4_hypre.rs:
