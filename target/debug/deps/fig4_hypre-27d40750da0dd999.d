/root/repo/target/debug/deps/fig4_hypre-27d40750da0dd999.d: crates/bench/src/bin/fig4_hypre.rs

/root/repo/target/debug/deps/fig4_hypre-27d40750da0dd999: crates/bench/src/bin/fig4_hypre.rs

crates/bench/src/bin/fig4_hypre.rs:
