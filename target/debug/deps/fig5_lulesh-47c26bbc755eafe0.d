/root/repo/target/debug/deps/fig5_lulesh-47c26bbc755eafe0.d: crates/bench/src/bin/fig5_lulesh.rs

/root/repo/target/debug/deps/fig5_lulesh-47c26bbc755eafe0: crates/bench/src/bin/fig5_lulesh.rs

crates/bench/src/bin/fig5_lulesh.rs:
