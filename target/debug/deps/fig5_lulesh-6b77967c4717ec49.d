/root/repo/target/debug/deps/fig5_lulesh-6b77967c4717ec49.d: crates/bench/src/bin/fig5_lulesh.rs

/root/repo/target/debug/deps/fig5_lulesh-6b77967c4717ec49: crates/bench/src/bin/fig5_lulesh.rs

crates/bench/src/bin/fig5_lulesh.rs:
