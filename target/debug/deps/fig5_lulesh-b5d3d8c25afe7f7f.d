/root/repo/target/debug/deps/fig5_lulesh-b5d3d8c25afe7f7f.d: crates/bench/src/bin/fig5_lulesh.rs

/root/repo/target/debug/deps/fig5_lulesh-b5d3d8c25afe7f7f: crates/bench/src/bin/fig5_lulesh.rs

crates/bench/src/bin/fig5_lulesh.rs:
