/root/repo/target/debug/deps/fig6_openatom-0d83ef4af24fce1e.d: crates/bench/src/bin/fig6_openatom.rs

/root/repo/target/debug/deps/fig6_openatom-0d83ef4af24fce1e: crates/bench/src/bin/fig6_openatom.rs

crates/bench/src/bin/fig6_openatom.rs:
