/root/repo/target/debug/deps/fig6_openatom-3500ca6922c7a78a.d: crates/bench/src/bin/fig6_openatom.rs

/root/repo/target/debug/deps/fig6_openatom-3500ca6922c7a78a: crates/bench/src/bin/fig6_openatom.rs

crates/bench/src/bin/fig6_openatom.rs:
