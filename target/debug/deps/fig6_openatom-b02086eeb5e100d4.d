/root/repo/target/debug/deps/fig6_openatom-b02086eeb5e100d4.d: crates/bench/src/bin/fig6_openatom.rs

/root/repo/target/debug/deps/fig6_openatom-b02086eeb5e100d4: crates/bench/src/bin/fig6_openatom.rs

crates/bench/src/bin/fig6_openatom.rs:
