/root/repo/target/debug/deps/fig7_sensitivity-75c22bd734f12ddd.d: crates/bench/src/bin/fig7_sensitivity.rs

/root/repo/target/debug/deps/fig7_sensitivity-75c22bd734f12ddd: crates/bench/src/bin/fig7_sensitivity.rs

crates/bench/src/bin/fig7_sensitivity.rs:
