/root/repo/target/debug/deps/fig7_sensitivity-9b4157e92549b345.d: crates/bench/src/bin/fig7_sensitivity.rs

/root/repo/target/debug/deps/fig7_sensitivity-9b4157e92549b345: crates/bench/src/bin/fig7_sensitivity.rs

crates/bench/src/bin/fig7_sensitivity.rs:
