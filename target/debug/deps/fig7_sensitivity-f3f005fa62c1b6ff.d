/root/repo/target/debug/deps/fig7_sensitivity-f3f005fa62c1b6ff.d: crates/bench/src/bin/fig7_sensitivity.rs

/root/repo/target/debug/deps/fig7_sensitivity-f3f005fa62c1b6ff: crates/bench/src/bin/fig7_sensitivity.rs

crates/bench/src/bin/fig7_sensitivity.rs:
