/root/repo/target/debug/deps/fig8_transfer-614787613615dbec.d: crates/bench/src/bin/fig8_transfer.rs

/root/repo/target/debug/deps/fig8_transfer-614787613615dbec: crates/bench/src/bin/fig8_transfer.rs

crates/bench/src/bin/fig8_transfer.rs:
