/root/repo/target/debug/deps/fig8_transfer-897f7d4c4c7143ae.d: crates/bench/src/bin/fig8_transfer.rs

/root/repo/target/debug/deps/fig8_transfer-897f7d4c4c7143ae: crates/bench/src/bin/fig8_transfer.rs

crates/bench/src/bin/fig8_transfer.rs:
