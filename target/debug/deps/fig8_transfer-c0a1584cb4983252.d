/root/repo/target/debug/deps/fig8_transfer-c0a1584cb4983252.d: crates/bench/src/bin/fig8_transfer.rs

/root/repo/target/debug/deps/fig8_transfer-c0a1584cb4983252: crates/bench/src/bin/fig8_transfer.rs

crates/bench/src/bin/fig8_transfer.rs:
