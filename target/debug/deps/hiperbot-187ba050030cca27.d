/root/repo/target/debug/deps/hiperbot-187ba050030cca27.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot-187ba050030cca27.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
