/root/repo/target/debug/deps/hiperbot-23e7fe8265d37d5b.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/hiperbot-23e7fe8265d37d5b: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
