/root/repo/target/debug/deps/hiperbot-301298e10ba0bab7.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot-301298e10ba0bab7.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
