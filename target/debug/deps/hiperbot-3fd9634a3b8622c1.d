/root/repo/target/debug/deps/hiperbot-3fd9634a3b8622c1.d: src/bin/hiperbot.rs

/root/repo/target/debug/deps/hiperbot-3fd9634a3b8622c1: src/bin/hiperbot.rs

src/bin/hiperbot.rs:
