/root/repo/target/debug/deps/hiperbot-5b7f2f5450406c15.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libhiperbot-5b7f2f5450406c15.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libhiperbot-5b7f2f5450406c15.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
