/root/repo/target/debug/deps/hiperbot-83329d43258a7eb2.d: src/bin/hiperbot.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot-83329d43258a7eb2.rmeta: src/bin/hiperbot.rs Cargo.toml

src/bin/hiperbot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
