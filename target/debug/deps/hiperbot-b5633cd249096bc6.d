/root/repo/target/debug/deps/hiperbot-b5633cd249096bc6.d: src/bin/hiperbot.rs

/root/repo/target/debug/deps/hiperbot-b5633cd249096bc6: src/bin/hiperbot.rs

src/bin/hiperbot.rs:
