/root/repo/target/debug/deps/hiperbot-bfc1d8f528f592f1.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/hiperbot-bfc1d8f528f592f1: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
