/root/repo/target/debug/deps/hiperbot-de5f495904dfda43.d: src/bin/hiperbot.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot-de5f495904dfda43.rmeta: src/bin/hiperbot.rs Cargo.toml

src/bin/hiperbot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
