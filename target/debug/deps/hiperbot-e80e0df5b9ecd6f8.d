/root/repo/target/debug/deps/hiperbot-e80e0df5b9ecd6f8.d: src/bin/hiperbot.rs

/root/repo/target/debug/deps/hiperbot-e80e0df5b9ecd6f8: src/bin/hiperbot.rs

src/bin/hiperbot.rs:
