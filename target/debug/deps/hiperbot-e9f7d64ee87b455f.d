/root/repo/target/debug/deps/hiperbot-e9f7d64ee87b455f.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libhiperbot-e9f7d64ee87b455f.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libhiperbot-e9f7d64ee87b455f.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
