/root/repo/target/debug/deps/hiperbot-fb9b2baf05ab20e6.d: src/bin/hiperbot.rs

/root/repo/target/debug/deps/hiperbot-fb9b2baf05ab20e6: src/bin/hiperbot.rs

src/bin/hiperbot.rs:
