/root/repo/target/debug/deps/hiperbot_apps-476ff94347c45b7e.d: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs

/root/repo/target/debug/deps/libhiperbot_apps-476ff94347c45b7e.rlib: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs

/root/repo/target/debug/deps/libhiperbot_apps-476ff94347c45b7e.rmeta: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs

crates/apps/src/lib.rs:
crates/apps/src/dataset.rs:
crates/apps/src/hypre.rs:
crates/apps/src/kripke.rs:
crates/apps/src/lulesh.rs:
crates/apps/src/openatom.rs:
