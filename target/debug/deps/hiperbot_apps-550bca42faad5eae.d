/root/repo/target/debug/deps/hiperbot_apps-550bca42faad5eae.d: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot_apps-550bca42faad5eae.rmeta: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/dataset.rs:
crates/apps/src/hypre.rs:
crates/apps/src/kripke.rs:
crates/apps/src/lulesh.rs:
crates/apps/src/openatom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
