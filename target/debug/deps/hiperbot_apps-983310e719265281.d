/root/repo/target/debug/deps/hiperbot_apps-983310e719265281.d: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs

/root/repo/target/debug/deps/hiperbot_apps-983310e719265281: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs

crates/apps/src/lib.rs:
crates/apps/src/dataset.rs:
crates/apps/src/hypre.rs:
crates/apps/src/kripke.rs:
crates/apps/src/lulesh.rs:
crates/apps/src/openatom.rs:
