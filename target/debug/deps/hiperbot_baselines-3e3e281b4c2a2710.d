/root/repo/target/debug/deps/hiperbot_baselines-3e3e281b4c2a2710.d: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

/root/repo/target/debug/deps/libhiperbot_baselines-3e3e281b4c2a2710.rlib: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

/root/repo/target/debug/deps/libhiperbot_baselines-3e3e281b4c2a2710.rmeta: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

crates/baselines/src/lib.rs:
crates/baselines/src/geist.rs:
crates/baselines/src/gp.rs:
crates/baselines/src/perfnet.rs:
crates/baselines/src/random.rs:
crates/baselines/src/selector.rs:
