/root/repo/target/debug/deps/hiperbot_baselines-55fe168946b92e90.d: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

/root/repo/target/debug/deps/hiperbot_baselines-55fe168946b92e90: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

crates/baselines/src/lib.rs:
crates/baselines/src/geist.rs:
crates/baselines/src/gp.rs:
crates/baselines/src/perfnet.rs:
crates/baselines/src/random.rs:
crates/baselines/src/selector.rs:
