/root/repo/target/debug/deps/hiperbot_baselines-78d25b4d808a028a.d: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot_baselines-78d25b4d808a028a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/geist.rs:
crates/baselines/src/gp.rs:
crates/baselines/src/perfnet.rs:
crates/baselines/src/random.rs:
crates/baselines/src/selector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
