/root/repo/target/debug/deps/hiperbot_baselines-9c84d6bb21ff0887.d: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

/root/repo/target/debug/deps/libhiperbot_baselines-9c84d6bb21ff0887.rlib: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

/root/repo/target/debug/deps/libhiperbot_baselines-9c84d6bb21ff0887.rmeta: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

crates/baselines/src/lib.rs:
crates/baselines/src/geist.rs:
crates/baselines/src/gp.rs:
crates/baselines/src/perfnet.rs:
crates/baselines/src/random.rs:
crates/baselines/src/selector.rs:
