/root/repo/target/debug/deps/hiperbot_bench-1bb11cacca79fd84.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhiperbot_bench-1bb11cacca79fd84.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhiperbot_bench-1bb11cacca79fd84.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
