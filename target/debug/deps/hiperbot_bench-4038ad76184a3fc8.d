/root/repo/target/debug/deps/hiperbot_bench-4038ad76184a3fc8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hiperbot_bench-4038ad76184a3fc8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
