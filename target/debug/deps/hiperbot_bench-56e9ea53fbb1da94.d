/root/repo/target/debug/deps/hiperbot_bench-56e9ea53fbb1da94.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhiperbot_bench-56e9ea53fbb1da94.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhiperbot_bench-56e9ea53fbb1da94.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
