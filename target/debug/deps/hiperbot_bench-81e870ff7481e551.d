/root/repo/target/debug/deps/hiperbot_bench-81e870ff7481e551.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhiperbot_bench-81e870ff7481e551.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhiperbot_bench-81e870ff7481e551.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
