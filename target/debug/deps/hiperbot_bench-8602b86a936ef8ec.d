/root/repo/target/debug/deps/hiperbot_bench-8602b86a936ef8ec.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hiperbot_bench-8602b86a936ef8ec: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
