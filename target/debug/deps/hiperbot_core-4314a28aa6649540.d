/root/repo/target/debug/deps/hiperbot_core-4314a28aa6649540.d: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot_core-4314a28aa6649540.rmeta: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/history.rs:
crates/core/src/importance.rs:
crates/core/src/selection.rs:
crates/core/src/stopping.rs:
crates/core/src/surrogate.rs:
crates/core/src/transfer.rs:
crates/core/src/tuner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
