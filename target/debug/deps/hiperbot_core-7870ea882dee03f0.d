/root/repo/target/debug/deps/hiperbot_core-7870ea882dee03f0.d: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/hiperbot_core-7870ea882dee03f0: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/history.rs:
crates/core/src/importance.rs:
crates/core/src/selection.rs:
crates/core/src/stopping.rs:
crates/core/src/surrogate.rs:
crates/core/src/transfer.rs:
crates/core/src/tuner.rs:
