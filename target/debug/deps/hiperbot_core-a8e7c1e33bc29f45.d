/root/repo/target/debug/deps/hiperbot_core-a8e7c1e33bc29f45.d: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/libhiperbot_core-a8e7c1e33bc29f45.rlib: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/libhiperbot_core-a8e7c1e33bc29f45.rmeta: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/history.rs:
crates/core/src/importance.rs:
crates/core/src/selection.rs:
crates/core/src/stopping.rs:
crates/core/src/surrogate.rs:
crates/core/src/transfer.rs:
crates/core/src/tuner.rs:
