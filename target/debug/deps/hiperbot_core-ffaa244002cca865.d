/root/repo/target/debug/deps/hiperbot_core-ffaa244002cca865.d: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/hiperbot_core-ffaa244002cca865: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/history.rs:
crates/core/src/importance.rs:
crates/core/src/selection.rs:
crates/core/src/stopping.rs:
crates/core/src/surrogate.rs:
crates/core/src/transfer.rs:
crates/core/src/tuner.rs:
