/root/repo/target/debug/deps/hiperbot_eval-6a24211335f70048.d: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot_eval-6a24211335f70048.rmeta: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/config_selection.rs:
crates/eval/src/experiments/fig1.rs:
crates/eval/src/experiments/fig7.rs:
crates/eval/src/experiments/fig8.rs:
crates/eval/src/experiments/table1.rs:
crates/eval/src/metrics.rs:
crates/eval/src/plot.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
