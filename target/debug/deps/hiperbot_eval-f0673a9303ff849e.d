/root/repo/target/debug/deps/hiperbot_eval-f0673a9303ff849e.d: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

/root/repo/target/debug/deps/libhiperbot_eval-f0673a9303ff849e.rlib: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

/root/repo/target/debug/deps/libhiperbot_eval-f0673a9303ff849e.rmeta: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

crates/eval/src/lib.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/config_selection.rs:
crates/eval/src/experiments/fig1.rs:
crates/eval/src/experiments/fig7.rs:
crates/eval/src/experiments/fig8.rs:
crates/eval/src/experiments/table1.rs:
crates/eval/src/metrics.rs:
crates/eval/src/plot.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
