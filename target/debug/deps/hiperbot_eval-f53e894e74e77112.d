/root/repo/target/debug/deps/hiperbot_eval-f53e894e74e77112.d: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

/root/repo/target/debug/deps/hiperbot_eval-f53e894e74e77112: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

crates/eval/src/lib.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/config_selection.rs:
crates/eval/src/experiments/fig1.rs:
crates/eval/src/experiments/fig7.rs:
crates/eval/src/experiments/fig8.rs:
crates/eval/src/experiments/table1.rs:
crates/eval/src/metrics.rs:
crates/eval/src/plot.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
