/root/repo/target/debug/deps/hiperbot_nn-315ba1a78afa39f7.d: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libhiperbot_nn-315ba1a78afa39f7.rlib: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libhiperbot_nn-315ba1a78afa39f7.rmeta: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optimizer.rs:
crates/nn/src/train.rs:
