/root/repo/target/debug/deps/hiperbot_nn-42646905da51d830.d: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot_nn-42646905da51d830.rmeta: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optimizer.rs:
crates/nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
