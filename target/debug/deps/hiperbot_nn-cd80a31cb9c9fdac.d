/root/repo/target/debug/deps/hiperbot_nn-cd80a31cb9c9fdac.d: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/hiperbot_nn-cd80a31cb9c9fdac: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optimizer.rs:
crates/nn/src/train.rs:
