/root/repo/target/debug/deps/hiperbot_perfsim-2264543d1801029e.d: crates/perfsim/src/lib.rs crates/perfsim/src/comm.rs crates/perfsim/src/machine.rs crates/perfsim/src/memory.rs crates/perfsim/src/noise.rs crates/perfsim/src/omp.rs crates/perfsim/src/power.rs crates/perfsim/src/roofline.rs crates/perfsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot_perfsim-2264543d1801029e.rmeta: crates/perfsim/src/lib.rs crates/perfsim/src/comm.rs crates/perfsim/src/machine.rs crates/perfsim/src/memory.rs crates/perfsim/src/noise.rs crates/perfsim/src/omp.rs crates/perfsim/src/power.rs crates/perfsim/src/roofline.rs crates/perfsim/src/topology.rs Cargo.toml

crates/perfsim/src/lib.rs:
crates/perfsim/src/comm.rs:
crates/perfsim/src/machine.rs:
crates/perfsim/src/memory.rs:
crates/perfsim/src/noise.rs:
crates/perfsim/src/omp.rs:
crates/perfsim/src/power.rs:
crates/perfsim/src/roofline.rs:
crates/perfsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
