/root/repo/target/debug/deps/hiperbot_perfsim-98e76fee18b14508.d: crates/perfsim/src/lib.rs crates/perfsim/src/comm.rs crates/perfsim/src/machine.rs crates/perfsim/src/memory.rs crates/perfsim/src/noise.rs crates/perfsim/src/omp.rs crates/perfsim/src/power.rs crates/perfsim/src/roofline.rs crates/perfsim/src/topology.rs

/root/repo/target/debug/deps/hiperbot_perfsim-98e76fee18b14508: crates/perfsim/src/lib.rs crates/perfsim/src/comm.rs crates/perfsim/src/machine.rs crates/perfsim/src/memory.rs crates/perfsim/src/noise.rs crates/perfsim/src/omp.rs crates/perfsim/src/power.rs crates/perfsim/src/roofline.rs crates/perfsim/src/topology.rs

crates/perfsim/src/lib.rs:
crates/perfsim/src/comm.rs:
crates/perfsim/src/machine.rs:
crates/perfsim/src/memory.rs:
crates/perfsim/src/noise.rs:
crates/perfsim/src/omp.rs:
crates/perfsim/src/power.rs:
crates/perfsim/src/roofline.rs:
crates/perfsim/src/topology.rs:
