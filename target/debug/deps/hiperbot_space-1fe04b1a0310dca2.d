/root/repo/target/debug/deps/hiperbot_space-1fe04b1a0310dca2.d: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs

/root/repo/target/debug/deps/libhiperbot_space-1fe04b1a0310dca2.rlib: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs

/root/repo/target/debug/deps/libhiperbot_space-1fe04b1a0310dca2.rmeta: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs

crates/space/src/lib.rs:
crates/space/src/config.rs:
crates/space/src/encoding.rs:
crates/space/src/param.rs:
crates/space/src/pool.rs:
crates/space/src/sampling.rs:
crates/space/src/space.rs:
