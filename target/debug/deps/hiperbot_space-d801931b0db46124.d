/root/repo/target/debug/deps/hiperbot_space-d801931b0db46124.d: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot_space-d801931b0db46124.rmeta: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs Cargo.toml

crates/space/src/lib.rs:
crates/space/src/config.rs:
crates/space/src/encoding.rs:
crates/space/src/param.rs:
crates/space/src/pool.rs:
crates/space/src/sampling.rs:
crates/space/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
