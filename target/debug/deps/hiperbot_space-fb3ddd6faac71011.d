/root/repo/target/debug/deps/hiperbot_space-fb3ddd6faac71011.d: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs

/root/repo/target/debug/deps/hiperbot_space-fb3ddd6faac71011: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs

crates/space/src/lib.rs:
crates/space/src/config.rs:
crates/space/src/encoding.rs:
crates/space/src/param.rs:
crates/space/src/pool.rs:
crates/space/src/sampling.rs:
crates/space/src/space.rs:
