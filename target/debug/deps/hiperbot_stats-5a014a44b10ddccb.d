/root/repo/target/debug/deps/hiperbot_stats-5a014a44b10ddccb.d: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libhiperbot_stats-5a014a44b10ddccb.rlib: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libhiperbot_stats-5a014a44b10ddccb.rmeta: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/correlation.rs:
crates/stats/src/divergence.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kde.rs:
crates/stats/src/linalg.rs:
crates/stats/src/quantile.rs:
crates/stats/src/rng.rs:
crates/stats/src/summary.rs:
