/root/repo/target/debug/deps/hiperbot_stats-5d0f8af35773c061.d: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libhiperbot_stats-5d0f8af35773c061.rmeta: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/correlation.rs:
crates/stats/src/divergence.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kde.rs:
crates/stats/src/linalg.rs:
crates/stats/src/quantile.rs:
crates/stats/src/rng.rs:
crates/stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
