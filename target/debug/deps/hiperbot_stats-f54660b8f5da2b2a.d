/root/repo/target/debug/deps/hiperbot_stats-f54660b8f5da2b2a.d: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/hiperbot_stats-f54660b8f5da2b2a: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/correlation.rs:
crates/stats/src/divergence.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kde.rs:
crates/stats/src/linalg.rs:
crates/stats/src/quantile.rs:
crates/stats/src/rng.rs:
crates/stats/src/summary.rs:
