/root/repo/target/debug/deps/kripke_structure-dbbad8f05ba9f2aa.d: crates/apps/tests/kripke_structure.rs

/root/repo/target/debug/deps/kripke_structure-dbbad8f05ba9f2aa: crates/apps/tests/kripke_structure.rs

crates/apps/tests/kripke_structure.rs:
