/root/repo/target/debug/deps/model_properties-ed96fe993965f040.d: crates/apps/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-ed96fe993965f040: crates/apps/tests/model_properties.rs

crates/apps/tests/model_properties.rs:
