/root/repo/target/debug/deps/numerical_edge_cases-470bbb742e0af5d4.d: crates/stats/tests/numerical_edge_cases.rs

/root/repo/target/debug/deps/numerical_edge_cases-470bbb742e0af5d4: crates/stats/tests/numerical_edge_cases.rs

crates/stats/tests/numerical_edge_cases.rs:
