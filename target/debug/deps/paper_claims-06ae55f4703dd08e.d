/root/repo/target/debug/deps/paper_claims-06ae55f4703dd08e.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-06ae55f4703dd08e: tests/paper_claims.rs

tests/paper_claims.rs:
