/root/repo/target/debug/deps/paper_claims-b7f85c6a3e1093a5.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-b7f85c6a3e1093a5: tests/paper_claims.rs

tests/paper_claims.rs:
