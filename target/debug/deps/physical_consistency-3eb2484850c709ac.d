/root/repo/target/debug/deps/physical_consistency-3eb2484850c709ac.d: crates/perfsim/tests/physical_consistency.rs

/root/repo/target/debug/deps/physical_consistency-3eb2484850c709ac: crates/perfsim/tests/physical_consistency.rs

crates/perfsim/tests/physical_consistency.rs:
