/root/repo/target/debug/deps/rand_distr-09e09c6c0cf018ac.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/rand_distr-09e09c6c0cf018ac: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
