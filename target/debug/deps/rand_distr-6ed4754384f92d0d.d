/root/repo/target/debug/deps/rand_distr-6ed4754384f92d0d.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-6ed4754384f92d0d.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-6ed4754384f92d0d.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
