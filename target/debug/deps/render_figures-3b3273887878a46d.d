/root/repo/target/debug/deps/render_figures-3b3273887878a46d.d: crates/bench/src/bin/render_figures.rs

/root/repo/target/debug/deps/render_figures-3b3273887878a46d: crates/bench/src/bin/render_figures.rs

crates/bench/src/bin/render_figures.rs:
