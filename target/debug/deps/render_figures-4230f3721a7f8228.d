/root/repo/target/debug/deps/render_figures-4230f3721a7f8228.d: crates/bench/src/bin/render_figures.rs

/root/repo/target/debug/deps/render_figures-4230f3721a7f8228: crates/bench/src/bin/render_figures.rs

crates/bench/src/bin/render_figures.rs:
