/root/repo/target/debug/deps/render_figures-866756d632842a9e.d: crates/bench/src/bin/render_figures.rs

/root/repo/target/debug/deps/render_figures-866756d632842a9e: crates/bench/src/bin/render_figures.rs

crates/bench/src/bin/render_figures.rs:
