/root/repo/target/debug/deps/repro_all-1f976deb7e3269ab.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-1f976deb7e3269ab: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
