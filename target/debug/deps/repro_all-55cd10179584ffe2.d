/root/repo/target/debug/deps/repro_all-55cd10179584ffe2.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-55cd10179584ffe2: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
