/root/repo/target/debug/deps/repro_all-58cfc9cb20bedcdb.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-58cfc9cb20bedcdb: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
