/root/repo/target/debug/deps/rustc_hash-065a36ca3b54d615.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/librustc_hash-065a36ca3b54d615.rlib: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/librustc_hash-065a36ca3b54d615.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
