/root/repo/target/debug/deps/rustc_hash-415a766d3d31f867.d: vendor/rustc-hash/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librustc_hash-415a766d3d31f867.rmeta: vendor/rustc-hash/src/lib.rs Cargo.toml

vendor/rustc-hash/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
