/root/repo/target/debug/deps/rustc_hash-cdf42eefca8ad9a6.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/rustc_hash-cdf42eefca8ad9a6: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
