/root/repo/target/debug/deps/scoring_properties-ed4f4f13b94edec3.d: crates/core/tests/scoring_properties.rs

/root/repo/target/debug/deps/scoring_properties-ed4f4f13b94edec3: crates/core/tests/scoring_properties.rs

crates/core/tests/scoring_properties.rs:
