/root/repo/target/debug/deps/serde_json-65dbef3e2efca91e.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-65dbef3e2efca91e: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
