/root/repo/target/debug/deps/serde_json-9c4e9391cbec36d4.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-9c4e9391cbec36d4.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-9c4e9391cbec36d4.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
