/root/repo/target/debug/deps/serde_roundtrip-d44ee6b1b5bbd0ec.d: crates/nn/tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-d44ee6b1b5bbd0ec: crates/nn/tests/serde_roundtrip.rs

crates/nn/tests/serde_roundtrip.rs:
