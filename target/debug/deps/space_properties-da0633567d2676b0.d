/root/repo/target/debug/deps/space_properties-da0633567d2676b0.d: crates/space/tests/space_properties.rs

/root/repo/target/debug/deps/space_properties-da0633567d2676b0: crates/space/tests/space_properties.rs

crates/space/tests/space_properties.rs:
