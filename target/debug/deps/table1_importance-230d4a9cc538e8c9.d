/root/repo/target/debug/deps/table1_importance-230d4a9cc538e8c9.d: crates/bench/src/bin/table1_importance.rs

/root/repo/target/debug/deps/table1_importance-230d4a9cc538e8c9: crates/bench/src/bin/table1_importance.rs

crates/bench/src/bin/table1_importance.rs:
