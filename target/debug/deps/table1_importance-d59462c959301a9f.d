/root/repo/target/debug/deps/table1_importance-d59462c959301a9f.d: crates/bench/src/bin/table1_importance.rs

/root/repo/target/debug/deps/table1_importance-d59462c959301a9f: crates/bench/src/bin/table1_importance.rs

crates/bench/src/bin/table1_importance.rs:
