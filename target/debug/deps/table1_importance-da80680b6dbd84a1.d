/root/repo/target/debug/deps/table1_importance-da80680b6dbd84a1.d: crates/bench/src/bin/table1_importance.rs

/root/repo/target/debug/deps/table1_importance-da80680b6dbd84a1: crates/bench/src/bin/table1_importance.rs

crates/bench/src/bin/table1_importance.rs:
