/root/repo/target/debug/deps/tuner_properties-7ff1384a0a4722e7.d: crates/core/tests/tuner_properties.rs

/root/repo/target/debug/deps/tuner_properties-7ff1384a0a4722e7: crates/core/tests/tuner_properties.rs

crates/core/tests/tuner_properties.rs:
