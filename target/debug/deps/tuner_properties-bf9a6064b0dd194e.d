/root/repo/target/debug/deps/tuner_properties-bf9a6064b0dd194e.d: crates/core/tests/tuner_properties.rs

/root/repo/target/debug/deps/tuner_properties-bf9a6064b0dd194e: crates/core/tests/tuner_properties.rs

crates/core/tests/tuner_properties.rs:
