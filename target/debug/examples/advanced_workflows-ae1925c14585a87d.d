/root/repo/target/debug/examples/advanced_workflows-ae1925c14585a87d.d: examples/advanced_workflows.rs Cargo.toml

/root/repo/target/debug/examples/libadvanced_workflows-ae1925c14585a87d.rmeta: examples/advanced_workflows.rs Cargo.toml

examples/advanced_workflows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
