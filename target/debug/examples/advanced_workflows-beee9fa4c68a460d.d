/root/repo/target/debug/examples/advanced_workflows-beee9fa4c68a460d.d: examples/advanced_workflows.rs

/root/repo/target/debug/examples/advanced_workflows-beee9fa4c68a460d: examples/advanced_workflows.rs

examples/advanced_workflows.rs:
