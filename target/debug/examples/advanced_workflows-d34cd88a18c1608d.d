/root/repo/target/debug/examples/advanced_workflows-d34cd88a18c1608d.d: examples/advanced_workflows.rs

/root/repo/target/debug/examples/advanced_workflows-d34cd88a18c1608d: examples/advanced_workflows.rs

examples/advanced_workflows.rs:
