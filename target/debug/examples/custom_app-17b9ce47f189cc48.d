/root/repo/target/debug/examples/custom_app-17b9ce47f189cc48.d: examples/custom_app.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_app-17b9ce47f189cc48.rmeta: examples/custom_app.rs Cargo.toml

examples/custom_app.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
