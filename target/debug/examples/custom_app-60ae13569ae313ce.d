/root/repo/target/debug/examples/custom_app-60ae13569ae313ce.d: examples/custom_app.rs

/root/repo/target/debug/examples/custom_app-60ae13569ae313ce: examples/custom_app.rs

examples/custom_app.rs:
