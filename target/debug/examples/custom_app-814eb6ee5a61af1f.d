/root/repo/target/debug/examples/custom_app-814eb6ee5a61af1f.d: examples/custom_app.rs

/root/repo/target/debug/examples/custom_app-814eb6ee5a61af1f: examples/custom_app.rs

examples/custom_app.rs:
