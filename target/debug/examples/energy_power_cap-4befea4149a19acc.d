/root/repo/target/debug/examples/energy_power_cap-4befea4149a19acc.d: examples/energy_power_cap.rs

/root/repo/target/debug/examples/energy_power_cap-4befea4149a19acc: examples/energy_power_cap.rs

examples/energy_power_cap.rs:
