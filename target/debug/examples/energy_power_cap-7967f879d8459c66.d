/root/repo/target/debug/examples/energy_power_cap-7967f879d8459c66.d: examples/energy_power_cap.rs

/root/repo/target/debug/examples/energy_power_cap-7967f879d8459c66: examples/energy_power_cap.rs

examples/energy_power_cap.rs:
