/root/repo/target/debug/examples/energy_power_cap-7e69c34be0cad734.d: examples/energy_power_cap.rs Cargo.toml

/root/repo/target/debug/examples/libenergy_power_cap-7e69c34be0cad734.rmeta: examples/energy_power_cap.rs Cargo.toml

examples/energy_power_cap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
