/root/repo/target/debug/examples/importance_analysis-1918f38440134ac9.d: examples/importance_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libimportance_analysis-1918f38440134ac9.rmeta: examples/importance_analysis.rs Cargo.toml

examples/importance_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
