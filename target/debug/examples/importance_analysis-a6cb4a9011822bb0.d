/root/repo/target/debug/examples/importance_analysis-a6cb4a9011822bb0.d: examples/importance_analysis.rs

/root/repo/target/debug/examples/importance_analysis-a6cb4a9011822bb0: examples/importance_analysis.rs

examples/importance_analysis.rs:
