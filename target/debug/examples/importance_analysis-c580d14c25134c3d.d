/root/repo/target/debug/examples/importance_analysis-c580d14c25134c3d.d: examples/importance_analysis.rs

/root/repo/target/debug/examples/importance_analysis-c580d14c25134c3d: examples/importance_analysis.rs

examples/importance_analysis.rs:
