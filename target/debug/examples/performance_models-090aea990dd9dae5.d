/root/repo/target/debug/examples/performance_models-090aea990dd9dae5.d: examples/performance_models.rs

/root/repo/target/debug/examples/performance_models-090aea990dd9dae5: examples/performance_models.rs

examples/performance_models.rs:
