/root/repo/target/debug/examples/performance_models-0988045879972629.d: examples/performance_models.rs

/root/repo/target/debug/examples/performance_models-0988045879972629: examples/performance_models.rs

examples/performance_models.rs:
