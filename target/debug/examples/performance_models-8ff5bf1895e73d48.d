/root/repo/target/debug/examples/performance_models-8ff5bf1895e73d48.d: examples/performance_models.rs Cargo.toml

/root/repo/target/debug/examples/libperformance_models-8ff5bf1895e73d48.rmeta: examples/performance_models.rs Cargo.toml

examples/performance_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
