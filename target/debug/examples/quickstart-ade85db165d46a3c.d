/root/repo/target/debug/examples/quickstart-ade85db165d46a3c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ade85db165d46a3c: examples/quickstart.rs

examples/quickstart.rs:
