/root/repo/target/debug/examples/quickstart-db84723f3f495ab2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-db84723f3f495ab2: examples/quickstart.rs

examples/quickstart.rs:
