/root/repo/target/debug/examples/transfer_learning-cb61f2078a00b8f3.d: examples/transfer_learning.rs

/root/repo/target/debug/examples/transfer_learning-cb61f2078a00b8f3: examples/transfer_learning.rs

examples/transfer_learning.rs:
