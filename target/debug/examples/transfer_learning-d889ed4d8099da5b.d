/root/repo/target/debug/examples/transfer_learning-d889ed4d8099da5b.d: examples/transfer_learning.rs Cargo.toml

/root/repo/target/debug/examples/libtransfer_learning-d889ed4d8099da5b.rmeta: examples/transfer_learning.rs Cargo.toml

examples/transfer_learning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
