/root/repo/target/debug/examples/transfer_learning-f48d08848c5fe224.d: examples/transfer_learning.rs

/root/repo/target/debug/examples/transfer_learning-f48d08848c5fe224: examples/transfer_learning.rs

examples/transfer_learning.rs:
