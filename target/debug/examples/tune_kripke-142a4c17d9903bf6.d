/root/repo/target/debug/examples/tune_kripke-142a4c17d9903bf6.d: examples/tune_kripke.rs

/root/repo/target/debug/examples/tune_kripke-142a4c17d9903bf6: examples/tune_kripke.rs

examples/tune_kripke.rs:
