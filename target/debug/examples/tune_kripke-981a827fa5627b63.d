/root/repo/target/debug/examples/tune_kripke-981a827fa5627b63.d: examples/tune_kripke.rs

/root/repo/target/debug/examples/tune_kripke-981a827fa5627b63: examples/tune_kripke.rs

examples/tune_kripke.rs:
