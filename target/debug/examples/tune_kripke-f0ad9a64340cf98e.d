/root/repo/target/debug/examples/tune_kripke-f0ad9a64340cf98e.d: examples/tune_kripke.rs Cargo.toml

/root/repo/target/debug/examples/libtune_kripke-f0ad9a64340cf98e.rmeta: examples/tune_kripke.rs Cargo.toml

examples/tune_kripke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
