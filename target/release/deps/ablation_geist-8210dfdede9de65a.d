/root/repo/target/release/deps/ablation_geist-8210dfdede9de65a.d: crates/bench/src/bin/ablation_geist.rs

/root/repo/target/release/deps/ablation_geist-8210dfdede9de65a: crates/bench/src/bin/ablation_geist.rs

crates/bench/src/bin/ablation_geist.rs:
