/root/repo/target/release/deps/ablation_importance-0af30464f289f47b.d: crates/bench/src/bin/ablation_importance.rs

/root/repo/target/release/deps/ablation_importance-0af30464f289f47b: crates/bench/src/bin/ablation_importance.rs

crates/bench/src/bin/ablation_importance.rs:
