/root/repo/target/release/deps/ablation_methods-64d04ff3f47a3e1f.d: crates/bench/src/bin/ablation_methods.rs

/root/repo/target/release/deps/ablation_methods-64d04ff3f47a3e1f: crates/bench/src/bin/ablation_methods.rs

crates/bench/src/bin/ablation_methods.rs:
