/root/repo/target/release/deps/ablation_transfer_weight-be5396ac1b97ab6a.d: crates/bench/src/bin/ablation_transfer_weight.rs

/root/repo/target/release/deps/ablation_transfer_weight-be5396ac1b97ab6a: crates/bench/src/bin/ablation_transfer_weight.rs

crates/bench/src/bin/ablation_transfer_weight.rs:
