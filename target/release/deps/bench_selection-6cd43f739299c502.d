/root/repo/target/release/deps/bench_selection-6cd43f739299c502.d: crates/bench/src/bin/bench_selection.rs

/root/repo/target/release/deps/bench_selection-6cd43f739299c502: crates/bench/src/bin/bench_selection.rs

crates/bench/src/bin/bench_selection.rs:
