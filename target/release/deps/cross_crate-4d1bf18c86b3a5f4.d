/root/repo/target/release/deps/cross_crate-4d1bf18c86b3a5f4.d: tests/cross_crate.rs

/root/repo/target/release/deps/cross_crate-4d1bf18c86b3a5f4: tests/cross_crate.rs

tests/cross_crate.rs:
