/root/repo/target/release/deps/end_to_end-1affd4eabdfda76c.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-1affd4eabdfda76c: tests/end_to_end.rs

tests/end_to_end.rs:
