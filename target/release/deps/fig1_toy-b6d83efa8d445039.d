/root/repo/target/release/deps/fig1_toy-b6d83efa8d445039.d: crates/bench/src/bin/fig1_toy.rs

/root/repo/target/release/deps/fig1_toy-b6d83efa8d445039: crates/bench/src/bin/fig1_toy.rs

crates/bench/src/bin/fig1_toy.rs:
