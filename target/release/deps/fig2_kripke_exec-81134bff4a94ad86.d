/root/repo/target/release/deps/fig2_kripke_exec-81134bff4a94ad86.d: crates/bench/src/bin/fig2_kripke_exec.rs

/root/repo/target/release/deps/fig2_kripke_exec-81134bff4a94ad86: crates/bench/src/bin/fig2_kripke_exec.rs

crates/bench/src/bin/fig2_kripke_exec.rs:
