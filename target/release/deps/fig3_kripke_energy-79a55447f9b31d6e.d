/root/repo/target/release/deps/fig3_kripke_energy-79a55447f9b31d6e.d: crates/bench/src/bin/fig3_kripke_energy.rs

/root/repo/target/release/deps/fig3_kripke_energy-79a55447f9b31d6e: crates/bench/src/bin/fig3_kripke_energy.rs

crates/bench/src/bin/fig3_kripke_energy.rs:
