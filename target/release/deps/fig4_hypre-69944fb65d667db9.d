/root/repo/target/release/deps/fig4_hypre-69944fb65d667db9.d: crates/bench/src/bin/fig4_hypre.rs

/root/repo/target/release/deps/fig4_hypre-69944fb65d667db9: crates/bench/src/bin/fig4_hypre.rs

crates/bench/src/bin/fig4_hypre.rs:
