/root/repo/target/release/deps/fig5_lulesh-93898d9b1c634e08.d: crates/bench/src/bin/fig5_lulesh.rs

/root/repo/target/release/deps/fig5_lulesh-93898d9b1c634e08: crates/bench/src/bin/fig5_lulesh.rs

crates/bench/src/bin/fig5_lulesh.rs:
