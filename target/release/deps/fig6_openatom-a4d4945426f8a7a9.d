/root/repo/target/release/deps/fig6_openatom-a4d4945426f8a7a9.d: crates/bench/src/bin/fig6_openatom.rs

/root/repo/target/release/deps/fig6_openatom-a4d4945426f8a7a9: crates/bench/src/bin/fig6_openatom.rs

crates/bench/src/bin/fig6_openatom.rs:
