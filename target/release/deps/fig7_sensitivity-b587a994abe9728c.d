/root/repo/target/release/deps/fig7_sensitivity-b587a994abe9728c.d: crates/bench/src/bin/fig7_sensitivity.rs

/root/repo/target/release/deps/fig7_sensitivity-b587a994abe9728c: crates/bench/src/bin/fig7_sensitivity.rs

crates/bench/src/bin/fig7_sensitivity.rs:
