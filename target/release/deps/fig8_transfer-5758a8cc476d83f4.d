/root/repo/target/release/deps/fig8_transfer-5758a8cc476d83f4.d: crates/bench/src/bin/fig8_transfer.rs

/root/repo/target/release/deps/fig8_transfer-5758a8cc476d83f4: crates/bench/src/bin/fig8_transfer.rs

crates/bench/src/bin/fig8_transfer.rs:
