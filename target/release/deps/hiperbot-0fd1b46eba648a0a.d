/root/repo/target/release/deps/hiperbot-0fd1b46eba648a0a.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libhiperbot-0fd1b46eba648a0a.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libhiperbot-0fd1b46eba648a0a.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
