/root/repo/target/release/deps/hiperbot-2a779d335f05ab37.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libhiperbot-2a779d335f05ab37.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libhiperbot-2a779d335f05ab37.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
