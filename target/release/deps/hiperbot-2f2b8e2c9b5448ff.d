/root/repo/target/release/deps/hiperbot-2f2b8e2c9b5448ff.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/hiperbot-2f2b8e2c9b5448ff: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
