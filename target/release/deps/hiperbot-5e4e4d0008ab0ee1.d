/root/repo/target/release/deps/hiperbot-5e4e4d0008ab0ee1.d: src/bin/hiperbot.rs

/root/repo/target/release/deps/hiperbot-5e4e4d0008ab0ee1: src/bin/hiperbot.rs

src/bin/hiperbot.rs:
