/root/repo/target/release/deps/hiperbot-758e60870485f3c4.d: src/bin/hiperbot.rs

/root/repo/target/release/deps/hiperbot-758e60870485f3c4: src/bin/hiperbot.rs

src/bin/hiperbot.rs:
