/root/repo/target/release/deps/hiperbot-a9fdb48ab88073cf.d: src/bin/hiperbot.rs

/root/repo/target/release/deps/hiperbot-a9fdb48ab88073cf: src/bin/hiperbot.rs

src/bin/hiperbot.rs:
