/root/repo/target/release/deps/hiperbot_apps-28fc8814631656f1.d: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs

/root/repo/target/release/deps/libhiperbot_apps-28fc8814631656f1.rlib: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs

/root/repo/target/release/deps/libhiperbot_apps-28fc8814631656f1.rmeta: crates/apps/src/lib.rs crates/apps/src/dataset.rs crates/apps/src/hypre.rs crates/apps/src/kripke.rs crates/apps/src/lulesh.rs crates/apps/src/openatom.rs

crates/apps/src/lib.rs:
crates/apps/src/dataset.rs:
crates/apps/src/hypre.rs:
crates/apps/src/kripke.rs:
crates/apps/src/lulesh.rs:
crates/apps/src/openatom.rs:
