/root/repo/target/release/deps/hiperbot_baselines-0e10b7c9eb7f1e93.d: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

/root/repo/target/release/deps/libhiperbot_baselines-0e10b7c9eb7f1e93.rlib: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

/root/repo/target/release/deps/libhiperbot_baselines-0e10b7c9eb7f1e93.rmeta: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

crates/baselines/src/lib.rs:
crates/baselines/src/geist.rs:
crates/baselines/src/gp.rs:
crates/baselines/src/perfnet.rs:
crates/baselines/src/random.rs:
crates/baselines/src/selector.rs:
