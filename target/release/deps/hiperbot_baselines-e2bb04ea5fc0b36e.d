/root/repo/target/release/deps/hiperbot_baselines-e2bb04ea5fc0b36e.d: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

/root/repo/target/release/deps/libhiperbot_baselines-e2bb04ea5fc0b36e.rlib: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

/root/repo/target/release/deps/libhiperbot_baselines-e2bb04ea5fc0b36e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/geist.rs crates/baselines/src/gp.rs crates/baselines/src/perfnet.rs crates/baselines/src/random.rs crates/baselines/src/selector.rs

crates/baselines/src/lib.rs:
crates/baselines/src/geist.rs:
crates/baselines/src/gp.rs:
crates/baselines/src/perfnet.rs:
crates/baselines/src/random.rs:
crates/baselines/src/selector.rs:
