/root/repo/target/release/deps/hiperbot_bench-be463b502680523d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhiperbot_bench-be463b502680523d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhiperbot_bench-be463b502680523d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
