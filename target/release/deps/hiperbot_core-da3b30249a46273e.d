/root/repo/target/release/deps/hiperbot_core-da3b30249a46273e.d: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

/root/repo/target/release/deps/libhiperbot_core-da3b30249a46273e.rlib: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

/root/repo/target/release/deps/libhiperbot_core-da3b30249a46273e.rmeta: crates/core/src/lib.rs crates/core/src/history.rs crates/core/src/importance.rs crates/core/src/selection.rs crates/core/src/stopping.rs crates/core/src/surrogate.rs crates/core/src/transfer.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/history.rs:
crates/core/src/importance.rs:
crates/core/src/selection.rs:
crates/core/src/stopping.rs:
crates/core/src/surrogate.rs:
crates/core/src/transfer.rs:
crates/core/src/tuner.rs:
