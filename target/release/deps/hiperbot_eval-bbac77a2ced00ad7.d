/root/repo/target/release/deps/hiperbot_eval-bbac77a2ced00ad7.d: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

/root/repo/target/release/deps/libhiperbot_eval-bbac77a2ced00ad7.rlib: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

/root/repo/target/release/deps/libhiperbot_eval-bbac77a2ced00ad7.rmeta: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

crates/eval/src/lib.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/config_selection.rs:
crates/eval/src/experiments/fig1.rs:
crates/eval/src/experiments/fig7.rs:
crates/eval/src/experiments/fig8.rs:
crates/eval/src/experiments/table1.rs:
crates/eval/src/metrics.rs:
crates/eval/src/plot.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
