/root/repo/target/release/deps/hiperbot_eval-e5982ebd3b73bdfd.d: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

/root/repo/target/release/deps/libhiperbot_eval-e5982ebd3b73bdfd.rlib: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

/root/repo/target/release/deps/libhiperbot_eval-e5982ebd3b73bdfd.rmeta: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/config_selection.rs crates/eval/src/experiments/fig1.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/table1.rs crates/eval/src/metrics.rs crates/eval/src/plot.rs crates/eval/src/report.rs crates/eval/src/runner.rs

crates/eval/src/lib.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/config_selection.rs:
crates/eval/src/experiments/fig1.rs:
crates/eval/src/experiments/fig7.rs:
crates/eval/src/experiments/fig8.rs:
crates/eval/src/experiments/table1.rs:
crates/eval/src/metrics.rs:
crates/eval/src/plot.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
