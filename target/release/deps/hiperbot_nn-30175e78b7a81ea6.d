/root/repo/target/release/deps/hiperbot_nn-30175e78b7a81ea6.d: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libhiperbot_nn-30175e78b7a81ea6.rlib: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libhiperbot_nn-30175e78b7a81ea6.rmeta: crates/nn/src/lib.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optimizer.rs:
crates/nn/src/train.rs:
