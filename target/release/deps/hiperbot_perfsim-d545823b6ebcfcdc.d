/root/repo/target/release/deps/hiperbot_perfsim-d545823b6ebcfcdc.d: crates/perfsim/src/lib.rs crates/perfsim/src/comm.rs crates/perfsim/src/machine.rs crates/perfsim/src/memory.rs crates/perfsim/src/noise.rs crates/perfsim/src/omp.rs crates/perfsim/src/power.rs crates/perfsim/src/roofline.rs crates/perfsim/src/topology.rs

/root/repo/target/release/deps/libhiperbot_perfsim-d545823b6ebcfcdc.rlib: crates/perfsim/src/lib.rs crates/perfsim/src/comm.rs crates/perfsim/src/machine.rs crates/perfsim/src/memory.rs crates/perfsim/src/noise.rs crates/perfsim/src/omp.rs crates/perfsim/src/power.rs crates/perfsim/src/roofline.rs crates/perfsim/src/topology.rs

/root/repo/target/release/deps/libhiperbot_perfsim-d545823b6ebcfcdc.rmeta: crates/perfsim/src/lib.rs crates/perfsim/src/comm.rs crates/perfsim/src/machine.rs crates/perfsim/src/memory.rs crates/perfsim/src/noise.rs crates/perfsim/src/omp.rs crates/perfsim/src/power.rs crates/perfsim/src/roofline.rs crates/perfsim/src/topology.rs

crates/perfsim/src/lib.rs:
crates/perfsim/src/comm.rs:
crates/perfsim/src/machine.rs:
crates/perfsim/src/memory.rs:
crates/perfsim/src/noise.rs:
crates/perfsim/src/omp.rs:
crates/perfsim/src/power.rs:
crates/perfsim/src/roofline.rs:
crates/perfsim/src/topology.rs:
