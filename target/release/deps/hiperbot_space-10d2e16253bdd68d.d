/root/repo/target/release/deps/hiperbot_space-10d2e16253bdd68d.d: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs

/root/repo/target/release/deps/libhiperbot_space-10d2e16253bdd68d.rlib: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs

/root/repo/target/release/deps/libhiperbot_space-10d2e16253bdd68d.rmeta: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/encoding.rs crates/space/src/param.rs crates/space/src/pool.rs crates/space/src/sampling.rs crates/space/src/space.rs

crates/space/src/lib.rs:
crates/space/src/config.rs:
crates/space/src/encoding.rs:
crates/space/src/param.rs:
crates/space/src/pool.rs:
crates/space/src/sampling.rs:
crates/space/src/space.rs:
