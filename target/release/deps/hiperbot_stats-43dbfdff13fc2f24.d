/root/repo/target/release/deps/hiperbot_stats-43dbfdff13fc2f24.d: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libhiperbot_stats-43dbfdff13fc2f24.rlib: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libhiperbot_stats-43dbfdff13fc2f24.rmeta: crates/stats/src/lib.rs crates/stats/src/correlation.rs crates/stats/src/divergence.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/linalg.rs crates/stats/src/quantile.rs crates/stats/src/rng.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/correlation.rs:
crates/stats/src/divergence.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kde.rs:
crates/stats/src/linalg.rs:
crates/stats/src/quantile.rs:
crates/stats/src/rng.rs:
crates/stats/src/summary.rs:
