/root/repo/target/release/deps/paper_claims-b178138936260e8e.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-b178138936260e8e: tests/paper_claims.rs

tests/paper_claims.rs:
