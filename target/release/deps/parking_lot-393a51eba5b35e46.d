/root/repo/target/release/deps/parking_lot-393a51eba5b35e46.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-393a51eba5b35e46.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-393a51eba5b35e46.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
