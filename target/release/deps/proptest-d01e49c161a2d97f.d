/root/repo/target/release/deps/proptest-d01e49c161a2d97f.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d01e49c161a2d97f.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d01e49c161a2d97f.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
