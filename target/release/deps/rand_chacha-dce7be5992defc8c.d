/root/repo/target/release/deps/rand_chacha-dce7be5992defc8c.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-dce7be5992defc8c.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-dce7be5992defc8c.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
