/root/repo/target/release/deps/rand_distr-61289dc91e2335b7.d: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-61289dc91e2335b7.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-61289dc91e2335b7.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
