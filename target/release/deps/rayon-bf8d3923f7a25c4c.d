/root/repo/target/release/deps/rayon-bf8d3923f7a25c4c.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-bf8d3923f7a25c4c.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-bf8d3923f7a25c4c.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
