/root/repo/target/release/deps/render_figures-86ace3fabe35111a.d: crates/bench/src/bin/render_figures.rs

/root/repo/target/release/deps/render_figures-86ace3fabe35111a: crates/bench/src/bin/render_figures.rs

crates/bench/src/bin/render_figures.rs:
