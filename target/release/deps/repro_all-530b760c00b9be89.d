/root/repo/target/release/deps/repro_all-530b760c00b9be89.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-530b760c00b9be89: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
