/root/repo/target/release/deps/rustc_hash-f121772396b31333.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-f121772396b31333.rlib: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-f121772396b31333.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
