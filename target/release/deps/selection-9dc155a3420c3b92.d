/root/repo/target/release/deps/selection-9dc155a3420c3b92.d: crates/bench/benches/selection.rs

/root/repo/target/release/deps/selection-9dc155a3420c3b92: crates/bench/benches/selection.rs

crates/bench/benches/selection.rs:
