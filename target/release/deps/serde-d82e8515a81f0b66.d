/root/repo/target/release/deps/serde-d82e8515a81f0b66.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d82e8515a81f0b66.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d82e8515a81f0b66.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
