/root/repo/target/release/deps/serde_derive-714147caacb5908f.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-714147caacb5908f.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
