/root/repo/target/release/deps/serde_json-c089529197362e1d.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c089529197362e1d.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c089529197362e1d.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
