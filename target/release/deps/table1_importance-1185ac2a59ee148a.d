/root/repo/target/release/deps/table1_importance-1185ac2a59ee148a.d: crates/bench/src/bin/table1_importance.rs

/root/repo/target/release/deps/table1_importance-1185ac2a59ee148a: crates/bench/src/bin/table1_importance.rs

crates/bench/src/bin/table1_importance.rs:
