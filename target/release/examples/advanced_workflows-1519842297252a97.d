/root/repo/target/release/examples/advanced_workflows-1519842297252a97.d: examples/advanced_workflows.rs

/root/repo/target/release/examples/advanced_workflows-1519842297252a97: examples/advanced_workflows.rs

examples/advanced_workflows.rs:
