/root/repo/target/release/examples/custom_app-6e08bebc096512d6.d: examples/custom_app.rs

/root/repo/target/release/examples/custom_app-6e08bebc096512d6: examples/custom_app.rs

examples/custom_app.rs:
