/root/repo/target/release/examples/energy_power_cap-8d5ad0d06bde4675.d: examples/energy_power_cap.rs

/root/repo/target/release/examples/energy_power_cap-8d5ad0d06bde4675: examples/energy_power_cap.rs

examples/energy_power_cap.rs:
