/root/repo/target/release/examples/importance_analysis-1511255eba9e39ba.d: examples/importance_analysis.rs

/root/repo/target/release/examples/importance_analysis-1511255eba9e39ba: examples/importance_analysis.rs

examples/importance_analysis.rs:
