/root/repo/target/release/examples/performance_models-ab3190104339c7f9.d: examples/performance_models.rs

/root/repo/target/release/examples/performance_models-ab3190104339c7f9: examples/performance_models.rs

examples/performance_models.rs:
