/root/repo/target/release/examples/quickstart-96a2cfbc231336df.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-96a2cfbc231336df: examples/quickstart.rs

examples/quickstart.rs:
