/root/repo/target/release/examples/seed_probe-379eda67e1d8a84b.d: examples/seed_probe.rs

/root/repo/target/release/examples/seed_probe-379eda67e1d8a84b: examples/seed_probe.rs

examples/seed_probe.rs:
