/root/repo/target/release/examples/transfer_learning-066d1e82cfa63241.d: examples/transfer_learning.rs

/root/repo/target/release/examples/transfer_learning-066d1e82cfa63241: examples/transfer_learning.rs

examples/transfer_learning.rs:
