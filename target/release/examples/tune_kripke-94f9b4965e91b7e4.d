/root/repo/target/release/examples/tune_kripke-94f9b4965e91b7e4.d: examples/tune_kripke.rs

/root/repo/target/release/examples/tune_kripke-94f9b4965e91b7e4: examples/tune_kripke.rs

examples/tune_kripke.rs:
