//! Checkpoint/resume through the full parallel stack: the constant-liar
//! batch loop feeding a real `BatchExecutor` worker pool with retries.
//! A run killed between merges and resumed from its snapshot must land on
//! the same history, best, and final snapshot bytes as the uninterrupted
//! run — worker scheduling and retry timing notwithstanding.

use hiperbot::core::{CheckpointPolicy, EvalOutcome, Tuner, TunerCheckpoint, TunerOptions};
use hiperbot::eval::{BatchExecutor, RetryPolicy};
use hiperbot::obs::{Event, MemoryRecorder};
use hiperbot::space::{Configuration, Domain, ParamDef, ParameterSpace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

fn space() -> ParameterSpace {
    let vals: Vec<i64> = (0..8).collect();
    ParameterSpace::builder()
        .param(ParamDef::new("x", Domain::discrete_ints(&vals)))
        .param(ParamDef::new("y", Domain::discrete_ints(&vals)))
        .build()
        .unwrap()
}

/// Deterministic objective with failures keyed on the configuration, so
/// every outcome is independent of workers, retries, and kill points.
fn objective(cfg: &Configuration, _trial: u64, _attempt: u32) -> EvalOutcome {
    let x = cfg.value(0).index();
    let y = cfg.value(1).index();
    if (x * 5 + y).is_multiple_of(6) {
        EvalOutcome::Failed {
            reason: "injected".into(),
        }
    } else {
        EvalOutcome::Ok((x as f64 - 5.0).powi(2) + (y as f64 - 2.0).powi(2) + 1.0)
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hiperbot-exec-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn opts() -> TunerOptions {
    TunerOptions::default().with_seed(17).with_init_samples(8)
}

fn executor() -> BatchExecutor<impl Fn(&Configuration, u64, u32) -> EvalOutcome + Sync> {
    BatchExecutor::new(objective, 4).with_policy(RetryPolicy::no_retries())
}

const BUDGET: usize = 24;
const BATCH: usize = 4;

#[test]
fn executor_backed_run_killed_midway_resumes_bit_identically() {
    let ref_path = temp_path("ref.json");
    let mut reference =
        Tuner::new(space(), opts()).with_checkpointing(CheckpointPolicy::new(&ref_path, 1));
    let exec = executor();
    let ref_best = reference
        .run_batch_fallible(BUDGET, BATCH, |cfgs, base| exec.evaluate_batch(cfgs, base))
        .unwrap();
    let ref_history = serde_json::to_string(reference.history()).unwrap();
    let ref_bytes = std::fs::read(&ref_path).unwrap();

    // Kill after three merged batches (12 trials): the dispatch closure
    // panics on the tuner thread, as a crash mid-campaign would.
    let kill_at = 12u64;
    let path = temp_path("killed.json");
    let mut killed =
        Tuner::new(space(), opts()).with_checkpointing(CheckpointPolicy::new(&path, 1));
    let exec = executor();
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        killed.run_batch_fallible(BUDGET, BATCH, |cfgs, base| {
            if base >= kill_at {
                panic!("simulated crash at trial {base}");
            }
            exec.evaluate_batch(cfgs, base)
        })
    }));
    assert!(crashed.is_err(), "run should have crashed");

    let snap = TunerCheckpoint::load(&path).unwrap();
    assert_eq!(
        snap.history.configs.len() + snap.history.failures.len(),
        kill_at as usize,
        "snapshot captured exactly the merged trials"
    );

    let rec = Arc::new(MemoryRecorder::new());
    let mut resumed = Tuner::resume_from_checkpoint(space(), opts(), &snap)
        .unwrap()
        .with_recorder(rec.clone())
        .with_checkpointing(CheckpointPolicy::new(&path, 1));
    let exec = executor();
    let best = resumed
        .run_batch_fallible(BUDGET, BATCH, |cfgs, base| exec.evaluate_batch(cfgs, base))
        .unwrap();

    assert_eq!(
        serde_json::to_string(resumed.history()).unwrap(),
        ref_history,
        "resumed history diverged from the uninterrupted run"
    );
    assert_eq!(best.objective, ref_best.objective);
    assert_eq!(best.config, ref_best.config);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        ref_bytes,
        "final snapshots diverged"
    );
    assert!(
        rec.events().iter().any(|e| matches!(
            e,
            Event::RunResumed { trials, source, .. }
                if *trials == kill_at && source == "snapshot"
        )),
        "resumed run must announce itself in the trace"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&ref_path).ok();
}

#[test]
fn executor_backed_resume_is_worker_count_invariant() {
    // Resume with a different worker count: scheduling may differ, the
    // result must not.
    let path = temp_path("workers.json");
    let mut first = Tuner::new(space(), opts()).with_checkpointing(CheckpointPolicy::new(&path, 1));
    let exec = executor();
    let stop = BUDGET / 2;
    first.run_batch_fallible(stop, BATCH, |cfgs, base| exec.evaluate_batch(cfgs, base));

    let snap = TunerCheckpoint::load(&path).unwrap();
    let mut results = Vec::new();
    for workers in [1usize, 4] {
        let mut resumed = Tuner::resume_from_checkpoint(space(), opts(), &snap).unwrap();
        let exec = BatchExecutor::new(objective, workers).with_policy(RetryPolicy::no_retries());
        resumed
            .run_batch_fallible(BUDGET, BATCH, |cfgs, base| exec.evaluate_batch(cfgs, base))
            .unwrap();
        results.push(serde_json::to_string(resumed.history()).unwrap());
    }
    assert_eq!(results[0], results[1], "worker count changed the outcome");
    std::fs::remove_file(&path).ok();
}
