//! Cross-crate consistency checks: the pieces different crates exchange
//! (configurations, encodings, traces, datasets) agree with each other.

use hiperbot::apps::{hypre, Scale};
use hiperbot::baselines::{ConfigSelector, GeistSelector, GpEiSelector, RandomSelector};
use hiperbot::space::{Encoder, EncodingKind};

#[test]
fn every_baseline_produces_a_valid_trace_on_hypre() {
    let dataset = hypre::dataset(Scale::Target);
    let geist = GeistSelector::default();
    let gp = GpEiSelector {
        candidate_cap: 500,
        ..GpEiSelector::default()
    };
    let methods: Vec<(&str, &dyn ConfigSelector)> = vec![
        ("Random", &RandomSelector),
        ("GEIST", &geist),
        ("GP-EI", &gp),
    ];
    for (name, m) in methods {
        let run = m.select(
            dataset.space(),
            dataset.configs(),
            &|c| dataset.evaluate(c),
            40,
            5,
        );
        assert_eq!(run.len(), 40, "{name} trace length");
        let set: std::collections::HashSet<_> = run.configs.iter().cloned().collect();
        assert_eq!(set.len(), 40, "{name} duplicates");
        for (c, &y) in run.configs.iter().zip(&run.objectives) {
            assert_eq!(dataset.evaluate(c), y, "{name} objective mismatch");
        }
    }
}

#[test]
fn encodings_cover_the_whole_hypre_space() {
    let dataset = hypre::dataset(Scale::Target);
    let onehot = Encoder::new(dataset.space(), EncodingKind::OneHot);
    let norm = Encoder::new(dataset.space(), EncodingKind::Normalized);
    assert_eq!(norm.width(), dataset.space().n_params());
    for cfg in dataset.configs().iter().step_by(97) {
        let v = onehot.encode(cfg);
        assert_eq!(v.len(), onehot.width());
        // one-hot blocks sum to exactly n_params for a fully discrete space
        let sum: f64 = v.iter().sum();
        assert!((sum - dataset.space().n_params() as f64).abs() < 1e-9);
        for x in norm.encode(cfg) {
            assert!((0.0..=1.0).contains(&x));
        }
    }
}

#[test]
fn dataset_lookup_agrees_with_model_recomputation() {
    // Dataset::evaluate is a lookup; the noise-free model times the noise
    // factor must reproduce it exactly.
    use hiperbot::perfsim::noise::lognormal_factor;
    let dataset = hypre::dataset(Scale::Target);
    let seed = hypre::SEED ^ Scale::Target.nodes() as u64;
    for (i, cfg) in dataset.configs().iter().enumerate().step_by(411) {
        let clean = hypre::model(cfg, dataset.space(), Scale::Target);
        let noisy = clean * lognormal_factor(&[seed, i as u64], 0.012);
        assert!(
            (noisy - dataset.objective(i)).abs() < 1e-12,
            "row {i}: {noisy} vs {}",
            dataset.objective(i)
        );
    }
}

#[test]
fn selection_runs_and_eval_metrics_compose() {
    use hiperbot::eval::metrics::{GoodSet, Recall};
    let dataset = hypre::dataset(Scale::Target);
    let recall = Recall::new(&dataset, GoodSet::Percentile(0.05));
    let run = RandomSelector.select(
        dataset.space(),
        dataset.configs(),
        &|c| dataset.evaluate(c),
        200,
        1,
    );
    // Manual recount must match the metric.
    let hits = run
        .objectives
        .iter()
        .filter(|&&y| y <= recall.threshold())
        .count();
    let expected = hits as f64 / recall.total_good() as f64;
    assert!((recall.of_prefix(&run.objectives, 200) - expected).abs() < 1e-12);
}

#[test]
fn stats_seed_sequences_isolate_parallel_repetitions() {
    // The runner's determinism rests on SeedSequence: derive the same seeds
    // it would, in a different order, and check equality.
    use hiperbot::stats::SeedSequence;
    let mut a = SeedSequence::new(99);
    let forward: Vec<u64> = (0..10).map(|_| a.next_seed()).collect();
    let mut b = SeedSequence::new(99);
    let again: Vec<u64> = (0..10).map(|_| b.next_seed()).collect();
    assert_eq!(forward, again);
    let unique: std::collections::HashSet<_> = forward.iter().collect();
    assert_eq!(unique.len(), 10);
}
