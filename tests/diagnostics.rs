//! Diagnostics parity contract tests.
//!
//! Every diagnostics output — the Prometheus exposition, the folded-stack
//! span profile, and the watchdog's alerts — derives only from event
//! fields. So a run that writes a trace and the offline replay of that
//! trace must produce *byte-identical* artifacts, and attaching the whole
//! diagnostics stack must leave the tuning result bit-identical to an
//! uninstrumented run.

use hiperbot::cli::{run, run_with_health, CliOptions};
use hiperbot::obs::{summarize_trace_with, validate_prometheus};
use std::path::PathBuf;

struct Paths {
    dir: PathBuf,
    trace: PathBuf,
    prom: PathBuf,
    folded: PathBuf,
}

fn paths(tag: &str) -> Paths {
    let dir = std::env::temp_dir().join(format!("hiperbot-diag-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    Paths {
        trace: dir.join("trace.jsonl"),
        prom: dir.join("metrics.prom"),
        folded: dir.join("profile.folded"),
        dir,
    }
}

fn diag_options(p: &Paths) -> CliOptions {
    CliOptions {
        app: Some("kripke".into()),
        budget: 30,
        seed: 11,
        init_samples: 10,
        trace_out: Some(p.trace.to_string_lossy().into_owned()),
        metrics_out: Some(p.prom.to_string_lossy().into_owned()),
        profile_out: Some(p.folded.to_string_lossy().into_owned()),
        diag: true,
        ..CliOptions::default()
    }
}

/// Replaying the run's own trace reproduces the Prometheus exposition and
/// the folded profile byte-for-byte — the invariant the CI `diag-smoke`
/// job diffs.
#[test]
fn replayed_trace_reproduces_prometheus_and_profile_exactly() {
    let p = paths("parity");
    run(&diag_options(&p)).unwrap();

    let trace = std::fs::read_to_string(&p.trace).unwrap();
    let summary = summarize_trace_with(&trace, false).unwrap();

    let live_prom = std::fs::read_to_string(&p.prom).unwrap();
    validate_prometheus(&live_prom).unwrap();
    assert_eq!(live_prom, summary.registry.render_prometheus());

    let live_folded = std::fs::read_to_string(&p.folded).unwrap();
    assert_eq!(live_folded, summary.profile.folded());
    assert!(live_folded.contains("run;tuner.fit "), "{live_folded}");

    let _ = std::fs::remove_dir_all(&p.dir);
}

/// Same parity under the parallel batch path: workers interleave retry
/// events, but everything the diagnostics fold is commutative, and all
/// order-sensitive events come from the tuner's own thread.
#[test]
fn batch_run_diagnostics_replay_exactly() {
    let p = paths("batch");
    let options = CliOptions {
        workers: 2,
        batch: 4,
        max_retries: 1,
        fail_prob: 0.15,
        ..diag_options(&p)
    };
    run(&options).unwrap();

    let trace = std::fs::read_to_string(&p.trace).unwrap();
    let summary = summarize_trace_with(&trace, false).unwrap();
    assert_eq!(
        std::fs::read_to_string(&p.prom).unwrap(),
        summary.registry.render_prometheus()
    );
    let live_folded = std::fs::read_to_string(&p.folded).unwrap();
    assert_eq!(live_folded, summary.profile.folded());
    // Batch spans nest: the batch is dispatched after fit/select, so the
    // merged evaluations (and only they) live under run;tuner.batch.
    assert!(
        live_folded.contains("run;tuner.batch;tuner.evaluate "),
        "{live_folded}"
    );

    let _ = std::fs::remove_dir_all(&p.dir);
}

/// A faulty run's watchdog alerts are written into the trace, and the
/// replay re-derives the identical alert set from the raw events (the
/// recorded `HealthAlert` lines themselves are ignored as inputs — no
/// double-counting).
#[test]
fn watchdog_alerts_survive_the_trace_round_trip() {
    let p = paths("alerts");
    let options = CliOptions {
        fail_prob: 0.6,
        ..diag_options(&p)
    };
    let (_, live_alerts) = run_with_health(&options).unwrap();
    assert!(
        live_alerts.iter().any(|a| a.code == "failure_rate"),
        "{live_alerts:?}"
    );

    let trace = std::fs::read_to_string(&p.trace).unwrap();
    assert!(trace.contains("HealthAlert"), "trace carries the alerts");
    let summary = summarize_trace_with(&trace, false).unwrap();
    assert_eq!(summary.diagnostics.alerts, live_alerts);
    assert!(!summary.diagnostics.healthy());
    // The alert lines in the trace count once in both expositions.
    assert_eq!(
        std::fs::read_to_string(&p.prom).unwrap(),
        summary.registry.render_prometheus()
    );

    let _ = std::fs::remove_dir_all(&p.dir);
}

/// The tentpole's non-negotiable: turning the full diagnostics stack on
/// does not change what the tuner does.
#[test]
fn diagnostics_leave_the_tuning_result_bit_identical() {
    let base = CliOptions {
        app: Some("kripke".into()),
        budget: 24,
        seed: 3,
        init_samples: 8,
        max_retries: 1,
        fail_prob: 0.2,
        ..CliOptions::default()
    };
    let plain = run(&base).unwrap();

    let p = paths("identity");
    let instrumented = run(&CliOptions {
        trace_out: Some(p.trace.to_string_lossy().into_owned()),
        metrics_out: Some(p.prom.to_string_lossy().into_owned()),
        profile_out: Some(p.folded.to_string_lossy().into_owned()),
        diag: true,
        strict_health: true,
        ..base
    })
    .unwrap();
    assert_eq!(plain, instrumented);

    let _ = std::fs::remove_dir_all(&p.dir);
}
