//! End-to-end integration: the full pipeline from application simulator to
//! tuned configuration, spanning every crate in the workspace.

use hiperbot::apps::{lulesh, Scale};
use hiperbot::core::{Tuner, TunerOptions};

#[test]
fn lulesh_pipeline_finds_a_near_optimal_flag_set() {
    let dataset = lulesh::dataset(Scale::Target);
    let (_, exhaustive) = dataset.best();

    let mut tuner = Tuner::new(
        dataset.space().clone(),
        TunerOptions::default().with_seed(1),
    );
    let best = tuner.run(150, |cfg| dataset.evaluate(cfg));

    // 150 of 4800 evaluations should land within 10% of the exhaustive best
    // (the paper's Fig. 5 shows convergence to ~3% by 446 samples).
    assert!(
        best.objective <= 1.10 * exhaustive,
        "best {} vs exhaustive {exhaustive}",
        best.objective
    );
}

#[test]
fn tuned_config_beats_the_compiler_default() {
    let dataset = lulesh::dataset(Scale::Target);
    let o3 = dataset.evaluate(&lulesh::default_o3_config(dataset.space()));

    let mut tuner = Tuner::new(
        dataset.space().clone(),
        TunerOptions::default().with_seed(2),
    );
    let best = tuner.run(100, |cfg| dataset.evaluate(cfg));

    // The paper's motivating LULESH observation: -O3 (6.02 s) is ~2.2x off
    // the best (2.72 s); even 100 samples should crush it.
    assert!(
        best.objective < 0.65 * o3,
        "tuned {} vs -O3 default {o3}",
        best.objective
    );
}

#[test]
fn history_prefix_metrics_are_consistent_with_the_run() {
    let dataset = lulesh::dataset(Scale::Target);
    let mut tuner = Tuner::new(
        dataset.space().clone(),
        TunerOptions::default().with_seed(3),
    );
    let best = tuner.run(80, |cfg| dataset.evaluate(cfg));

    let h = tuner.history();
    assert_eq!(h.len(), 80);
    assert_eq!(h.best_within(80), Some(best.objective));
    // every evaluated configuration is feasible and in the dataset
    for cfg in h.configs() {
        assert!(dataset.space().is_feasible(cfg));
        assert!(dataset.position(cfg).is_some());
    }
    // no duplicates (Ranking guarantee)
    let set: std::collections::HashSet<_> = h.configs().iter().cloned().collect();
    assert_eq!(set.len(), 80);
}

#[test]
fn importance_pipeline_identifies_lulesh_flag_structure() {
    use hiperbot::core::importance::parameter_importance;
    let dataset = lulesh::dataset(Scale::Target);
    let ranking = parameter_importance(
        dataset.space(),
        dataset.configs(),
        dataset.objectives(),
        0.20,
    );
    let js_of = |name: &str| {
        ranking
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.js)
            .expect("parameter present")
    };
    // The flags the model makes decisive must outrank the near-noise ones
    // (the structure of paper Table I's LULESH row).
    assert!(js_of("builtin") > js_of("strategy"));
    assert!(js_of("malloc") > js_of("functions"));
    assert!(js_of("unroll") > js_of("noipo"));
}
