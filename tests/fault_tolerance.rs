//! Fault-tolerance integration: the failure-aware tuning loop end to end —
//! fault-injected application simulators, retry/backoff, quarantined
//! failures, and exact reproducibility of faulted runs.

use std::sync::Arc;

use hiperbot::apps::{kripke, Scale};
use hiperbot::core::{EvalOutcome, ObservationHistory, Tuner, TunerOptions};
use hiperbot::eval::{outcome_from_sim, RetryPolicy, RetryingObjective};
use hiperbot::obs::{Event, MemoryRecorder};
use hiperbot::perfsim::faults::FaultModel;
use hiperbot::space::{Configuration, Domain, ParamDef, ParameterSpace};
use proptest::prelude::*;

/// Runs the Kripke exec dataset under a fault model with retries; returns
/// the tuner (for its history) and the best result, if any.
fn faulted_kripke_run(
    seed: u64,
    fail_prob: f64,
    max_retries: u32,
    budget: usize,
    recorder: Option<Arc<MemoryRecorder>>,
) -> (Tuner, Option<hiperbot::core::BestResult>, u64) {
    let dataset = kripke::exec_dataset(Scale::Target);
    let model = FaultModel::new(seed, fail_prob);
    let mut tuner = Tuner::new(
        dataset.space().clone(),
        TunerOptions::default().with_seed(seed),
    );
    if let Some(rec) = &recorder {
        tuner.set_recorder(rec.clone() as Arc<dyn hiperbot::obs::Recorder>);
    }
    let policy = RetryPolicy::default()
        .with_max_retries(max_retries)
        .with_seed(seed);
    let mut retrying = RetryingObjective::new(
        |cfg: &Configuration, attempt: u32| {
            outcome_from_sim(dataset.evaluate_outcome(cfg, &model, attempt))
        },
        policy,
    );
    if let Some(rec) = &recorder {
        retrying = retrying.with_recorder(rec.clone() as Arc<dyn hiperbot::obs::Recorder>);
    }
    let best = tuner.run_fallible(budget, |cfg| retrying.evaluate(cfg));
    let retries = retrying.retries();
    (tuner, best, retries)
}

fn assert_histories_identical(a: &ObservationHistory, b: &ObservationHistory) {
    assert_eq!(a.configs(), b.configs());
    assert_eq!(a.objectives(), b.objectives());
    assert_eq!(a.failures(), b.failures());
}

/// The PR's acceptance criterion: 20% injected failures on Kripke must not
/// panic, and the tuned best must stay within 2x of the fault-free best at
/// the same seed.
#[test]
fn kripke_tunes_through_20_percent_failures() {
    let seed = 42;
    let budget = 80;

    let (clean_tuner, clean_best, _) = faulted_kripke_run(seed, 0.0, 0, budget, None);
    let clean = clean_best.expect("fault-free run succeeds").objective;
    assert_eq!(clean_tuner.history().n_failures(), 0);

    let (tuner, best, _) = faulted_kripke_run(seed, 0.2, 2, budget, None);
    let best = best.expect("faulted run still finds a best");
    assert!(best.objective.is_finite());
    assert!(
        best.objective <= 2.0 * clean,
        "faulted best {} vs fault-free best {clean}",
        best.objective
    );

    // Failures consumed budget and were quarantined, never scored.
    let h = tuner.history();
    assert!(h.n_failures() > 0, "20% fail_prob must produce failures");
    assert_eq!(h.trials(), budget);
    assert_eq!(h.len() + h.n_failures(), h.trials());
    assert!(h.objectives().iter().all(|y| y.is_finite()));
    for f in h.failures() {
        assert!(
            !h.configs().contains(&f.config),
            "failed config also recorded as a success"
        );
    }
}

/// Faulted runs are exactly reproducible: the same seed replays the same
/// history — successes, failures, and retry count included.
#[test]
fn faulted_runs_replay_bit_identically() {
    let (t1, b1, r1) = faulted_kripke_run(7, 0.25, 2, 60, None);
    let (t2, b2, r2) = faulted_kripke_run(7, 0.25, 2, 60, None);
    assert_histories_identical(t1.history(), t2.history());
    assert_eq!(r1, r2, "retry counts must replay");
    let (b1, b2) = (b1.unwrap(), b2.unwrap());
    assert_eq!(b1.config, b2.config);
    assert_eq!(b1.objective, b2.objective);
    assert!(
        r1 > 0,
        "25% crashes with retries should trigger at least one"
    );
}

/// Attaching the observability recorder must not perturb the tuning
/// trajectory, and the failure events must reconcile with the history.
#[test]
fn traced_faulted_run_matches_untraced_and_counts_failures() {
    let rec = Arc::new(MemoryRecorder::new());
    let (plain, _, _) = faulted_kripke_run(11, 0.3, 1, 50, None);
    let (traced, _, retries) = faulted_kripke_run(11, 0.3, 1, 50, Some(rec.clone()));
    assert_histories_identical(plain.history(), traced.history());

    let events = rec.events();
    let failed = events
        .iter()
        .filter(|e| matches!(e, Event::TrialFailed { .. }))
        .count();
    let retried = events
        .iter()
        .filter(|e| matches!(e, Event::TrialRetried { .. }))
        .count();
    assert_eq!(failed, traced.history().n_failures());
    assert_eq!(retried as u64, retries);
}

/// A random fully discrete space of 1–3 parameters with 2–5 values each.
fn arb_space() -> impl Strategy<Value = ParameterSpace> {
    proptest::collection::vec(2usize..=5, 1..=3).prop_map(|cards| {
        let mut b = ParameterSpace::builder();
        for (i, c) in cards.into_iter().enumerate() {
            let vals: Vec<i64> = (0..c as i64).collect();
            b = b.param(ParamDef::new(format!("p{i}"), Domain::discrete_ints(&vals)));
        }
        b.build().expect("valid")
    })
}

fn config_hash(cfg: &Configuration, salt: u64) -> u64 {
    let mut h = salt ^ 0x9E37_79B9_7F4A_7C15;
    for v in cfg.values() {
        h = h
            .wrapping_add(v.index() as u64 + 1)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 29;
    }
    h
}

/// A hostile objective: deterministically crashes, times out, or reports
/// NaN/infinity for a large fraction of the space, finite values otherwise.
/// The non-finite arms go through `EvalOutcome::Ok` deliberately — the
/// tuner's normalization must catch them.
fn hostile_objective(cfg: &Configuration, salt: u64) -> EvalOutcome {
    let h = config_hash(cfg, salt);
    match h % 8 {
        0 => EvalOutcome::Failed {
            reason: "injected crash".into(),
        },
        1 => EvalOutcome::Timeout,
        2 => EvalOutcome::Ok(f64::NAN),
        3 => EvalOutcome::Ok(f64::INFINITY),
        _ => EvalOutcome::Ok(1.0 + (h % 10_000) as f64 / 100.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Half the space failing (crash/timeout/NaN/Inf) must never panic the
    /// loop or corrupt the history invariants.
    #[test]
    fn hostile_objectives_never_panic_or_corrupt_history(
        space in arb_space(),
        seed in 0u64..1000,
        salt in 0u64..1000,
        budget in 1usize..30,
    ) {
        let mut tuner = Tuner::new(space, TunerOptions::default().with_seed(seed).with_init_samples(5));
        let best = tuner.run_fallible(budget, |cfg| hostile_objective(cfg, salt));
        let h = tuner.history();
        prop_assert!(h.trials() <= budget);
        prop_assert_eq!(h.len() + h.n_failures(), h.trials());
        // Non-finite measurements never enter the objective table.
        prop_assert!(h.objectives().iter().all(|y| y.is_finite()));
        for f in h.failures() {
            prop_assert!(!h.configs().contains(&f.config));
        }
        match best {
            // The incumbent is the finite minimum of the observations — a
            // failed configuration can never become incumbent.
            Some(b) => {
                prop_assert!(b.objective.is_finite());
                let min = h.objectives().iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert_eq!(b.objective, min);
                prop_assert!(!h.failures().iter().any(|f| f.config == b.config));
            }
            None => prop_assert!(h.is_empty()),
        }
    }

    /// The faulted loop is deterministic for any seed and failure mix.
    #[test]
    fn hostile_runs_are_deterministic(
        space in arb_space(),
        seed in 0u64..1000,
        salt in 0u64..1000,
    ) {
        let opts = TunerOptions::default().with_seed(seed).with_init_samples(4);
        let mut t1 = Tuner::new(space.clone(), opts.clone());
        let mut t2 = Tuner::new(space, opts);
        let b1 = t1.run_fallible(15, |cfg| hostile_objective(cfg, salt));
        let b2 = t2.run_fallible(15, |cfg| hostile_objective(cfg, salt));
        assert_histories_identical(t1.history(), t2.history());
        prop_assert_eq!(b1.map(|b| b.objective), b2.map(|b| b.objective));
    }

    /// Retry backoff is pure and bounded: deterministic per (trial, attempt),
    /// within the jittered envelope, monotone cap respected.
    #[test]
    fn backoff_schedule_is_deterministic_and_bounded(
        seed in 0u64..10_000,
        trial in 0u64..1000,
        attempt in 0u32..12,
    ) {
        let policy = RetryPolicy::default().with_seed(seed);
        let a = policy.backoff_seconds(trial, attempt);
        let b = policy.backoff_seconds(trial, attempt);
        prop_assert_eq!(a, b);
        // Default policy: base 1.0, multiplier 2.0, cap 30.0, jitter 0.5.
        let raw = (1.0f64 * 2.0f64.powi(attempt as i32)).min(30.0);
        prop_assert!(a >= 0.5 * raw && a <= 1.5 * raw, "backoff {a} vs raw {raw}");
    }
}
