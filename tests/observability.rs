//! Observability contract tests.
//!
//! The central invariant: attaching a recorder must not change what the
//! tuner does. Instrumentation never touches RNG state, so a traced run
//! and an untraced run with the same seed must walk the exact same
//! incumbent trajectory. The rest checks event coverage: every iteration
//! of a traced run is visible in the trace.

use hiperbot::core::{Tuner, TunerOptions};
use hiperbot::obs::{
    summarize_trace, Event, JsonlSink, MemoryRecorder, MetricsRecorder, MetricsRegistry,
    MultiRecorder, Recorder,
};
use hiperbot::space::{Configuration, Domain, ParamDef, ParameterSpace};
use std::sync::Arc;

fn space() -> ParameterSpace {
    let vals: Vec<i64> = (0..10).collect();
    ParameterSpace::builder()
        .param(ParamDef::new("x", Domain::discrete_ints(&vals)))
        .param(ParamDef::new("y", Domain::discrete_ints(&vals)))
        .build()
        .unwrap()
}

fn objective(cfg: &Configuration) -> f64 {
    let x = cfg.value(0).index() as f64;
    let y = cfg.value(1).index() as f64;
    (x - 7.0).powi(2) + (y - 3.0).powi(2) + 1.0
}

/// Budget 60 with the default 20 bootstrap samples = 40 model iterations.
const BUDGET: usize = 60;
const BOOTSTRAP: usize = 20;
const ITERATIONS: usize = BUDGET - BOOTSTRAP;

fn run_history(seed: u64, recorder: Option<Arc<dyn Recorder>>) -> Vec<(Configuration, f64)> {
    let mut tuner = Tuner::new(space(), TunerOptions::default().with_seed(seed));
    if let Some(r) = recorder {
        tuner.set_recorder(r);
    }
    tuner.run(BUDGET, objective);
    tuner
        .history()
        .configs()
        .iter()
        .cloned()
        .zip(tuner.history().objectives().iter().copied())
        .collect()
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    for seed in [0u64, 7, 42] {
        let untraced = run_history(seed, None);
        let recorder = Arc::new(MemoryRecorder::new());
        let traced = run_history(seed, Some(recorder.clone()));
        assert_eq!(
            untraced, traced,
            "tracing perturbed the run for seed {seed}"
        );
        assert!(!recorder.is_empty(), "recorder saw no events");
    }
}

#[test]
fn trace_covers_every_iteration_and_phase() {
    let recorder = Arc::new(MemoryRecorder::new());
    run_history(3, Some(recorder.clone()));
    let events = recorder.events();

    let count = |f: fn(&Event) -> bool| events.iter().filter(|e| f(e)).count();
    assert_eq!(count(|e| matches!(e, Event::RunHeader(_))), 1);
    assert_eq!(count(|e| matches!(e, Event::RunFinished { .. })), 1);
    assert_eq!(
        count(|e| matches!(e, Event::IterationStart { .. })),
        ITERATIONS
    );
    assert_eq!(
        count(|e| matches!(e, Event::SurrogateFit { .. })),
        ITERATIONS
    );
    assert_eq!(
        count(|e| matches!(e, Event::SelectionScored { .. })),
        ITERATIONS
    );
    assert_eq!(
        count(|e| matches!(e, Event::ObjectiveEvaluated { .. })),
        BUDGET
    );
    assert!(count(|e| matches!(e, Event::IncumbentImproved { .. })) >= 1);

    // The header leads and describes the space.
    match events.first() {
        Some(Event::RunHeader(h)) => {
            assert_eq!(h.seed, 3);
            assert_eq!(h.n_params, 2);
            assert_eq!(h.pool_size, 100);
        }
        other => panic!("first event should be the run header, got {other:?}"),
    }
}

#[test]
fn jsonl_trace_round_trips_and_replays() {
    let dir = std::env::temp_dir().join(format!("hiperbot-obs-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");

    let registry = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(JsonlSink::create(&path).unwrap());
    let tee = MultiRecorder::new()
        .with(sink.clone())
        .with(Arc::new(MetricsRecorder::new(registry.clone())));
    run_history(11, Some(Arc::new(tee)));
    sink.flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let summary = summarize_trace(&text).unwrap();
    assert_eq!(summary.iterations as usize, ITERATIONS);
    assert_eq!(summary.evaluations as usize, BUDGET);
    let header = summary.header.as_ref().expect("trace has a header");
    assert_eq!(header.seed, 11);

    // Offline replay recovers the same latency counts the live metrics
    // registry accumulated, because both fold the same event stream.
    for phase in ["tuner.fit", "tuner.select", "tuner.evaluate"] {
        let live = registry.histogram(phase).expect("live phase").count();
        let replayed = summary.registry.histogram(phase).expect("replayed").count();
        assert_eq!(live, replayed, "{phase}");
    }
    // Stronger: the whole registry matches, down to the byte, in both the
    // summary table and the Prometheus exposition.
    assert_eq!(registry.render_summary(), summary.registry.render_summary());
    assert_eq!(
        registry.render_prometheus(),
        summary.registry.render_prometheus()
    );

    // The final incumbent matches the actual best of an identical run.
    let history = run_history(11, None);
    let best = history
        .iter()
        .map(|(_, y)| *y)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(summary.final_best, Some(best));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tee_delivers_each_event_to_every_sink_in_registration_order() {
    use std::sync::Mutex;

    /// Appends its label on every delivery, exposing the tee's fan-out
    /// order.
    struct Tagger {
        label: &'static str,
        log: Arc<Mutex<Vec<&'static str>>>,
    }
    impl Recorder for Tagger {
        fn record(&self, _event: &Event) {
            self.log.lock().unwrap().push(self.label);
        }
    }

    let log = Arc::new(Mutex::new(Vec::new()));
    let tee = MultiRecorder::new()
        .with(Arc::new(Tagger {
            label: "first",
            log: log.clone(),
        }))
        .with(Arc::new(Tagger {
            label: "second",
            log: log.clone(),
        }));
    for iteration in 0..3 {
        tee.record(&Event::IterationStart {
            iteration,
            history_len: iteration,
        });
    }
    assert_eq!(
        *log.lock().unwrap(),
        vec!["first", "second", "first", "second", "first", "second"]
    );
}

#[test]
fn metrics_summary_has_all_tuner_phases() {
    let registry = Arc::new(MetricsRegistry::new());
    run_history(5, Some(Arc::new(MetricsRecorder::new(registry.clone()))));
    let table = registry.render_summary();
    for phase in ["tuner.fit", "tuner.select", "tuner.evaluate"] {
        assert!(table.contains(phase), "missing {phase} in:\n{table}");
        let h = registry.histogram(phase).unwrap();
        assert!(h.quantile(0.95).unwrap() >= h.quantile(0.5).unwrap());
    }
    assert_eq!(registry.counter("tuner.iterations"), ITERATIONS as u64);
}
