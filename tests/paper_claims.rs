//! Integration tests pinning the paper's qualitative claims on the real
//! (simulated) application datasets — the "shape" EXPERIMENTS.md reports.

use hiperbot::apps::{kripke, openatom, Scale};
use hiperbot::baselines::{ConfigSelector, GeistSelector, HiPerBOtSelector, RandomSelector};
use hiperbot::eval::metrics::GoodSet;
use hiperbot::eval::runner::{run_trials, TrialConfig};

/// §V headline: HiPerBOt beats GEIST beats Random on Kripke exec, for both
/// metrics, at the paper's largest checkpoint.
#[test]
fn kripke_method_ordering_matches_the_paper() {
    let dataset = kripke::exec_dataset(Scale::Target);
    let cfg = TrialConfig::new(vec![192])
        .with_repetitions(6)
        .with_good(GoodSet::Percentile(0.02));

    let hb = &run_trials(&dataset, &HiPerBOtSelector::default(), &cfg)[0];
    let ge = &run_trials(&dataset, &GeistSelector::default(), &cfg)[0];
    let rn = &run_trials(&dataset, &RandomSelector, &cfg)[0];

    assert!(
        hb.best.mean() <= ge.best.mean() + 1e-9,
        "best: HiPerBOt {} vs GEIST {}",
        hb.best.mean(),
        ge.best.mean()
    );
    assert!(ge.best.mean() <= rn.best.mean() + 1e-9);
    assert!(hb.recall.mean() >= ge.recall.mean() - 1e-9);
    assert!(ge.recall.mean() >= rn.recall.mean());
    // Fig. 2b's magnitude claim: HiPerBOt finds at least 2x the good
    // configurations Random does.
    assert!(hb.recall.mean() >= 2.0 * rn.recall.mean());
}

/// §V-A: HiPerBOt locates the exact exhaustive best within ~12% of the
/// Kripke exec space (the paper: 96 of 1609 samples).
#[test]
fn kripke_finds_the_exhaustive_best_with_a_small_budget() {
    let dataset = kripke::exec_dataset(Scale::Target);
    let (_, exhaustive) = dataset.best();
    let hb = HiPerBOtSelector::default();
    let mut found = 0;
    for seed in 0..5 {
        let run = hb.select(
            dataset.space(),
            dataset.configs(),
            &|c| dataset.evaluate(c),
            192,
            seed,
        );
        if (run.best_within(192) - exhaustive).abs() < 1e-12 {
            found += 1;
        }
    }
    assert!(found >= 3, "found the exact best in only {found}/5 runs");
}

/// §V-A (energy): the tuner beats the expert's power-level heuristic by a
/// wide margin using ~2% of the space.
#[test]
fn kripke_energy_beats_the_expert_heuristic() {
    let dataset = kripke::energy_dataset(Scale::Target);
    let expert = dataset.evaluate(&kripke::energy_expert_config(dataset.space()));
    let run = HiPerBOtSelector::default().select(
        dataset.space(),
        dataset.configs(),
        &|c| dataset.evaluate(c),
        (dataset.len() as f64 * 0.022) as usize,
        7,
    );
    let best = run.best_within(run.len());
    assert!(
        best < 0.75 * expert,
        "tuned {best:.0} J vs expert {expert:.0} J"
    );
}

/// §V-D: OpenAtom — best found with ~3% of the space, beating the expert's
/// symmetric decomposition.
#[test]
fn openatom_beats_the_symmetric_expert() {
    let dataset = openatom::dataset(Scale::Target);
    let expert = dataset.evaluate(&openatom::expert_config(dataset.space()));
    let run = HiPerBOtSelector::default().select(
        dataset.space(),
        dataset.configs(),
        &|c| dataset.evaluate(c),
        (dataset.len() as f64 * 0.03) as usize,
        11,
    );
    let best = run.best_within(run.len());
    let (_, exhaustive) = dataset.best();
    assert!(best < expert, "tuned {best} vs expert {expert}");
    assert!(
        best <= 1.05 * exhaustive,
        "tuned {best} vs exhaustive {exhaustive}"
    );
}

/// §VII: the transfer prior accelerates target-domain tuning under a tight
/// budget (the Fig. 8 setting, shrunk).
#[test]
fn transfer_prior_helps_on_kripke_energy() {
    use hiperbot::core::{TransferPrior, Tuner, TunerOptions};
    let source = kripke::energy_dataset(Scale::Source);
    let target = kripke::energy_dataset(Scale::Target);
    let prior = TransferPrior::from_source(
        source.space(),
        source.configs(),
        source.objectives(),
        0.20,
        1.0,
    );

    let budget = 60;
    let mut wins = 0;
    for seed in 0..5u64 {
        let with = Tuner::new(
            target.space().clone(),
            TunerOptions::default()
                .with_seed(seed)
                .with_prior(prior.clone(), TransferPrior::default_weight()),
        )
        .run(budget, |c| target.evaluate(c))
        .objective;
        let without = Tuner::new(
            target.space().clone(),
            TunerOptions::default().with_seed(seed),
        )
        .run(budget, |c| target.evaluate(c))
        .objective;
        if with <= without {
            wins += 1;
        }
    }
    assert!(wins >= 3, "prior helped in only {wins}/5 runs");
}
