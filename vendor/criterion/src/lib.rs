//! Offline vendored subset of `criterion`: enough harness to define and run
//! the workspace's `harness = false` bench targets.
//!
//! Each benchmark auto-calibrates an iteration count targeting ~40 ms per
//! sample, runs `sample_size` samples, and prints the fastest sample's
//! ns/iter (the low-noise point estimate). No statistics beyond that.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Fastest observed ns/iter, for callers that want the number.
    pub last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, printing and recording ns/iter.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch takes >= 10 ms.
        let mut n: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            if elapsed >= 1.0e7 || n >= 1 << 24 {
                break elapsed / n as f64;
            }
            n *= 2;
        };
        // Target ~40 ms per sample.
        let batch = ((4.0e7 / per_iter.max(0.1)) as u64).clamp(1, 1 << 26);
        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64 / batch as f64;
            if elapsed < best {
                best = elapsed;
            }
        }
        self.last_ns_per_iter = best;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        last_ns_per_iter: f64::NAN,
    };
    f(&mut b);
    println!("{label:<56} {:>14.1} ns/iter", b.last_ns_per_iter);
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (separator line).
    pub fn finish(self) {
        println!();
    }
}

/// Declares a group of benchmark functions as a runnable function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(8usize), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        quick(&mut c);
    }
}
