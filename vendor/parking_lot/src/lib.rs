//! Offline vendored subset of `parking_lot`: a `Mutex` with the
//! `parking_lot` API (no poisoning, guard from `&self`), backed by
//! `std::sync::Mutex`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock. `lock()` never returns a poison error: a
/// panicked holder simply releases the lock (matching `parking_lot`
/// semantics).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed; `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn clone_through_guard() {
        let m: Mutex<Option<Vec<u8>>> = Mutex::new(Some(vec![1, 2]));
        let copy = m.lock().clone();
        assert_eq!(copy, Some(vec![1, 2]));
    }
}
