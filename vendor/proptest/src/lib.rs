//! Offline vendored subset of `proptest`.
//!
//! Provides the `proptest!` macro, the `Strategy` trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, and `collection::vec`.
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs left to the assertion message), and each test's RNG is
//! seeded deterministically from the test function's name so runs are
//! reproducible in CI.

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic generator used by strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name: same name → same sequence, every run.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let mid = self.base.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128 - 1) as u64;
                self.start.wrapping_add(rng.range_u64(0, span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(rng.range_u64(0, span) as $t)
            }
        }
    )+};
}

int_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )+};
}

float_strategies!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(0u64..100, 1..=4)) {
            prop_assert!((1..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_threads_the_intermediate(
            (n, v) in (2usize..6).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..10, n..=n)))
        ) {
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
