//! Offline vendored subset of `rand` 0.8: the `RngCore`/`SeedableRng`/`Rng`
//! traits, typed `gen_range`, and `seq::SliceRandom`.
//!
//! Streams are deterministic per seed but are not bit-compatible with the
//! upstream crate (nothing in this workspace depends on upstream bit
//! patterns — only on per-seed determinism).

/// A source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 (the same
    /// scheme upstream uses, so distinct seeds give well-separated states).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply rejection (Lemire); unbiased.
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range from which `Rng::gen_range` can sample a single value.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )+};
}

int_sample_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )+};
}

float_sample_uniform!(f32, f64);

pub mod seq {
    //! Sequence utilities: uniform shuffling and choosing.

    use super::Rng;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles just the first `amount` positions; returns the shuffled
        /// prefix and the untouched-order remainder.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let n = self.len();
            let amount = amount.min(n);
            for i in 0..amount {
                let j = rng.gen_range(i..n);
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct TestRng(u64);
    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_prefix_has_distinct_items() {
        let mut rng = TestRng(2);
        let mut v: Vec<u32> = (0..20).collect();
        let (prefix, rest) = v.partial_shuffle(&mut rng, 5);
        assert_eq!(prefix.len(), 5);
        assert_eq!(rest.len(), 15);
    }
}
