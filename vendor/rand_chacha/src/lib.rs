//! Offline vendored subset of `rand_chacha`: a ChaCha8-based RNG.
//!
//! The keystream is a faithful ChaCha8 implementation (djb's original
//! layout, 64-bit block counter), keyed from the 32-byte seed. Deterministic
//! per seed; not bit-compatible with the upstream crate's stream ordering.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A cryptographically-strong deterministic RNG using 8 ChaCha rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// ChaCha input state: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current output block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means empty.
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// The number of 32-bit words consumed from the keystream so far.
    ///
    /// Because ChaCha is counter-based, `(seed, word_pos)` fully determines
    /// the generator state: re-seeding from the same seed and calling
    /// [`set_word_pos`](Self::set_word_pos) restores the exact stream
    /// position. This is what makes the RNG checkpointable.
    pub fn word_pos(&self) -> u64 {
        let counter = self.state[12] as u64 | ((self.state[13] as u64) << 32);
        // `counter` blocks have been generated; the current block has
        // `BLOCK_WORDS - idx` unread words left (idx == BLOCK_WORDS right
        // after seeding, before the first refill, when counter == 0).
        counter * BLOCK_WORDS as u64 - (BLOCK_WORDS - self.idx) as u64
    }

    /// Repositions the keystream to `word_pos` words from the start, as
    /// returned by [`word_pos`](Self::word_pos).
    pub fn set_word_pos(&mut self, word_pos: u64) {
        let counter = word_pos / BLOCK_WORDS as u64;
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = BLOCK_WORDS; // force a refill on the next read
        for _ in 0..(word_pos % BLOCK_WORDS as u64) {
            self.next_u32();
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Two rounds per loop: one column round, one diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *b = w.wrapping_add(*s);
        }
        // 64-bit little-endian block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // counter + nonce start at zero
        Self {
            state,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0..10usize));
        }
        assert_eq!(seen.len(), 10, "all residues should appear");
    }

    #[test]
    fn word_pos_round_trips_at_every_offset() {
        // Restoring (seed, word_pos) must reproduce the exact remaining
        // stream, including positions inside and at block boundaries.
        for consumed in [0usize, 1, 7, 15, 16, 17, 31, 32, 100] {
            let mut a = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..consumed {
                a.next_u32();
            }
            assert_eq!(a.word_pos(), consumed as u64);
            let mut b = ChaCha8Rng::seed_from_u64(99);
            b.set_word_pos(consumed as u64);
            assert_eq!(b.word_pos(), consumed as u64);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64(), "at offset {consumed}");
            }
        }
    }

    #[test]
    fn output_looks_balanced() {
        // Crude sanity check on the keystream: ones-density near 50%.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..256).map(|_| rng.next_u64().count_ones()).sum();
        let total = 256 * 64;
        let density = ones as f64 / total as f64;
        assert!((0.47..0.53).contains(&density), "density {density}");
    }
}
