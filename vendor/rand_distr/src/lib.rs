//! Offline vendored subset of `rand_distr`: the `Distribution` trait and the
//! `Normal` distribution (Box–Muller sampling).

use rand::{Rng, RngCore};
use std::fmt;

/// Types that can produce samples of `T` given an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Mean was NaN.
    MeanTooSmall,
    /// Standard deviation was negative or NaN.
    BadVariance,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::MeanTooSmall => f.write_str("mean is invalid"),
            NormalError::BadVariance => f.write_str("standard deviation is negative or NaN"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Builds `N(mean, std_dev²)`. Fails if `std_dev` is negative or NaN.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if mean.is_nan() {
            return Err(NormalError::MeanTooSmall);
        }
        if std_dev < 0.0 || std_dev.is_nan() {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

#[inline]
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Uniform in (0, 1]: avoids ln(0) in Box–Muller.
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1 = unit_open(rng);
        let u2 = unit_open(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestRng(u64);
    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn rejects_bad_std() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_are_roughly_right() {
        let n = Normal::new(3.0, 2.0).unwrap();
        let mut rng = TestRng(5);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
