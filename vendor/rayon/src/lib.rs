//! Offline vendored subset of `rayon`, implemented with `std::thread::scope`.
//!
//! The model is index-addressable parallel iterators: a source knows its
//! length and can produce the item at any index (`&self`, so threads share
//! it). Consumers split the index range into one contiguous block per
//! thread and join results **in block order**, so `collect` preserves item
//! order exactly like rayon's indexed iterators, and any reduction the
//! caller performs over collected output is independent of thread count.
//!
//! `RAYON_NUM_THREADS` is read **per call**, so tests can toggle the
//! degree of parallelism at runtime. Small inputs run serially.

use std::ops::Range;

/// Number of worker threads to use (per-call; honors `RAYON_NUM_THREADS`).
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Below this many items, the overhead of spawning threads dominates and
/// consumers run serially.
const SERIAL_CUTOFF: usize = 1024;

/// The common prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// An index-addressable parallel iterator.
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item: Send;

    /// Total number of items.
    fn pi_len(&self) -> usize;

    /// Produces the item at `index`. Must be safe to call concurrently.
    fn pi_get(&self, index: usize) -> Self::Item;

    /// Maps each item through `f`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Accepted for rayon compatibility; chunking here is already
    /// contiguous-block per thread, so the hint is a no-op.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Applies `f` to every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.pi_len();
        run_blocks(n, &|range| {
            for i in range {
                f(self.pi_get(i));
            }
        });
    }

    /// Collects all items, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        let n = self.pi_len();
        let threads = clamp_threads(n);
        if threads <= 1 {
            return C::from_ordered_vec((0..n).map(|i| self.pi_get(i)).collect());
        }
        let chunk = n.div_ceil(threads);
        let mut parts: Vec<Vec<Self::Item>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let this = &self;
            let handles: Vec<_> = (0..threads)
                .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
                .filter(|(lo, hi)| lo < hi)
                .map(|(lo, hi)| s.spawn(move || (lo..hi).map(|i| this.pi_get(i)).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon (vendored): worker panicked"));
            }
        });
        C::from_ordered_vec(parts.into_iter().flatten().collect())
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item>,
    {
        let items: Vec<Self::Item> = self.collect();
        items.into_iter().sum()
    }
}

fn clamp_threads(n: usize) -> usize {
    if n < SERIAL_CUTOFF {
        1
    } else {
        current_num_threads().min(n.max(1))
    }
}

/// Runs `body` over `0..n` split into one contiguous block per thread.
fn run_blocks(n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
    let threads = clamp_threads(n);
    if threads <= 1 {
        body(0..n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo < hi {
                s.spawn(move || body(lo..hi));
            }
        }
    });
}

/// Sink for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from items already in index order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Types convertible into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Conversion.
    fn into_par_iter(self) -> Self::Iter;
}

/// Types whose references iterate in parallel (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: Send;
    /// Conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceParIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceParIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// Parallel iterator over a slice.
#[derive(Clone, Copy)]
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceParIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceParIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// Parallel iterator over `Range<usize>`.
#[derive(Clone, Copy)]
pub struct RangeParIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;
    fn pi_len(&self) -> usize {
        self.len
    }
    fn pi_get(&self, index: usize) -> usize {
        self.start + index
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Result of [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_get(&self, index: usize) -> U {
        (self.f)(self.base.pi_get(index))
    }
}

/// Result of [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_get(&self, index: usize) -> (usize, I::Item) {
        (index, self.base.pi_get(index))
    }
}

/// `par_chunks_mut` support for mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into mutable chunks of `chunk_size` (last may be shorter),
    /// processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMutParIter {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks (eager: chunk borrows are
/// materialized up front, then distributed over scoped threads).
pub struct ChunksMutParIter<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ChunksMutParIter<'a, T> {
    /// Pairs each chunk with its chunk index.
    pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
        EnumeratedChunksMut {
            chunks: self.chunks.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
        T: Send,
    {
        distribute(self.chunks, &|chunk| f(chunk));
    }
}

/// Result of [`ChunksMutParIter::enumerate`].
pub struct EnumeratedChunksMut<'a, T: Send> {
    chunks: Vec<(usize, &'a mut [T])>,
}

impl<T: Send> EnumeratedChunksMut<'_, T> {
    /// Applies `f` to every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        distribute(self.chunks, &|(i, chunk)| f((i, chunk)));
    }
}

/// Distributes owned work items over scoped threads, one contiguous block
/// of items per thread.
fn distribute<W: Send>(items: Vec<W>, f: &(dyn Fn(W) + Sync)) {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        for w in items {
            f(w);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    let mut blocks: Vec<Vec<W>> = Vec::with_capacity(threads);
    let mut items = items;
    // Peel blocks off the back so each drain is O(block).
    let mut bounds: Vec<usize> = (0..threads).map(|t| (t * chunk).min(n)).collect();
    bounds.push(n);
    for t in (0..threads).rev() {
        blocks.push(items.split_off(bounds[t]));
    }
    std::thread::scope(|s| {
        for block in blocks {
            if !block.is_empty() {
                s.spawn(move || {
                    for w in block {
                        f(w);
                    }
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x as u64 * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        for (i, &d) in doubled.iter().enumerate() {
            assert_eq!(d, i as u64 * 2);
        }
    }

    #[test]
    fn enumerate_indices_are_global() {
        let v: Vec<u32> = (0..5000).collect();
        let pairs: Vec<(usize, u32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        for (i, (j, x)) in pairs.iter().enumerate() {
            assert_eq!(i, *j);
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..2000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[44], 44 * 44);
    }

    #[test]
    fn chunks_mut_covers_every_element() {
        let mut v = vec![0u64; 10_000];
        v.par_chunks_mut(256).enumerate().for_each(|(ci, chunk)| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 256 + k) as u64;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn respects_thread_env_without_changing_results() {
        let v: Vec<u32> = (0..50_000).collect();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let a: Vec<u64> = v.par_iter().map(|&x| x as u64 + 1).collect();
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let b: Vec<u64> = v.par_iter().map(|&x| x as u64 + 1).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(a, b);
    }
}
