//! Offline vendored subset of `rustc-hash`: the Fx hash function and the
//! `FxHashMap`/`FxHashSet` aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash: a fast, non-cryptographic multiply-rotate hash.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let s: FxHashSet<u64> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn hashing_is_stable_per_process() {
        use std::hash::{BuildHasher, Hash};
        let bh = FxBuildHasher::default();
        let h = |v: &str| {
            let mut hasher = bh.build_hasher();
            v.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h("hello"), h("hello"));
        assert_ne!(h("hello"), h("world"));
    }
}
