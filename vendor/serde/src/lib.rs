//! Offline vendored subset of `serde`.
//!
//! Instead of serde's visitor architecture, this subset uses a simple
//! value-tree model: `Serialize` lowers a type to a [`Value`], and
//! `Deserialize` lifts it back. `serde_json` prints/parses `Value` trees.
//! The derive macros in `serde_derive` generate `to_value`/`from_value`
//! implementations that follow serde's data model for the shapes this
//! workspace uses: named-field structs, externally tagged enums, the
//! `try_from`/`into` container attributes, and internal tagging
//! (`tag = "..."`, `rename_all = "snake_case"`).

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value: the intermediate representation between
/// typed Rust data and a concrete format such as JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// null
    Null,
    /// true / false
    Bool(bool),
    /// signed integer
    Int(i64),
    /// unsigned integer
    UInt(u64),
    /// floating point
    Float(f64),
    /// string
    Str(String),
    /// ordered sequence
    Array(Vec<Value>),
    /// ordered key/value map (field order preserved)
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (ints coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| __field(m, key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lowers `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can lift themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Lifts a value from the value tree; errors on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for a missing struct field. Errors by default; `Option`
    /// overrides this to yield `None` (matching serde's behavior).
    #[doc(hidden)]
    fn __missing_field(field: &str, container: &str) -> Result<Self, Error> {
        Err(Error::custom(format!(
            "missing field `{field}` in {container}"
        )))
    }
}

/// Looks up a key in object entries (first match, like serde_json).
#[doc(hidden)]
pub fn __field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Borrows a value's object entries or errors with the container name.
#[doc(hidden)]
pub fn __as_object<'a>(v: &'a Value, container: &str) -> Result<&'a [(String, Value)], Error> {
    v.as_object()
        .ok_or_else(|| Error::custom(format!("expected an object for {container}")))
}

// ---- primitive impls ------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom("expected a boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected a string"))
    }
}

macro_rules! int_impls {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected an integer for ", stringify!($t)))),
                }
            }
        }
    )+};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(concat!("expected a number for ", stringify!($t))))
            }
        }
    )+};
}

float_impls!(f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn __missing_field(_field: &str, _container: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| Error::custom("expected a 2-element array"))?;
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| Error::custom("expected a 3-element array"))?;
        Ok((
            A::from_value(&a[0])?,
            B::from_value(&a[1])?,
            C::from_value(&a[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<f64> = Deserialize::from_value(&vec![1.0, 2.0].to_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn missing_option_field_defaults_to_none() {
        let r: Result<Option<u32>, _> = Deserialize::__missing_field("x", "T");
        assert_eq!(r.unwrap(), None);
        let r: Result<u32, _> = Deserialize::__missing_field("x", "T");
        assert!(r.is_err());
    }

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![("id".into(), Value::Str("fig".into()))]);
        assert_eq!(v["id"], "fig");
        assert!(v["nope"].is_null());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
        assert_eq!(usize::from_value(&Value::UInt(5)).unwrap(), 5);
        assert!(usize::from_value(&Value::Int(-1)).is_err());
    }
}
