//! Offline vendored subset of `serde_derive`.
//!
//! Hand-rolled derives (no `syn`/`quote`): the input token stream is parsed
//! directly and the generated impl is assembled as a source string, then
//! re-parsed into a `TokenStream`. Supported shapes — exactly what this
//! workspace uses:
//!
//! - structs with named fields (no generics),
//! - enums whose variants are unit, 1-field tuple ("newtype"), or named
//!   fields, with serde's externally-tagged representation,
//! - container attributes `try_from = "..."` / `into = "..."` (proxy
//!   conversion) and `tag = "..."` + `rename_all = "snake_case"`
//!   (internally tagged deserialization),
//! - the field attribute `#[serde(default)]` (missing keys deserialize
//!   via `Default::default()`, so old payloads load under newer schemas).
//!
//! Unsupported shapes panic at compile time with a clear message rather
//! than silently generating wrong code.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` (value-tree subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

#[derive(Default)]
struct ContainerAttrs {
    try_from: Option<String>,
    into: Option<String>,
    tag: Option<String>,
    rename_all: Option<String>,
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

/// One named field: its identifier and whether `#[serde(default)]` is set.
struct Field {
    name: String,
    default: bool,
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut i = 0;
    let mut kind = String::new();

    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    parse_outer_attr(g, &mut attrs);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = id.to_string();
                i += 1;
                break;
            }
            other => panic!("serde derive (vendored): unexpected token `{other}` before item keyword"),
        }
    }

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive (vendored): expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }

    // Proxy conversions bypass the body entirely.
    if ser {
        if let Some(proxy) = &attrs.into {
            return ser_via_into(&name, proxy).parse().unwrap();
        }
    } else if let Some(proxy) = &attrs.try_from {
        return de_via_try_from(&name, proxy).parse().unwrap();
    }

    let body = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive (vendored): tuple struct `{name}` is not supported")
            }
            Some(_) => i += 1,
            None => panic!("serde derive (vendored): `{name}` has no braced body"),
        }
    };

    let out = if kind == "struct" {
        let fields = parse_named_fields(&body);
        if ser {
            ser_struct(&name, &fields)
        } else {
            de_struct(&name, &fields)
        }
    } else {
        let variants = parse_variants(&body);
        if ser {
            ser_enum(&name, &variants)
        } else if let Some(tag) = &attrs.tag {
            de_enum_tagged(&name, &variants, tag, attrs.rename_all.as_deref())
        } else {
            de_enum_external(&name, &variants)
        }
    };
    out.parse().unwrap()
}

/// Parses one `#[...]` outer attribute group, recording `serde(...)` keys.
fn parse_outer_attr(g: &Group, attrs: &mut ContainerAttrs) {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment, cfg, other derives — ignore
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let items: Vec<TokenTree> = inner.into_iter().collect();
    let mut j = 0;
    while j < items.len() {
        let key = match &items[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                j += 1;
                continue;
            }
        };
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = items.get(j + 1) {
            if p.as_char() == '=' {
                if let Some(TokenTree::Literal(lit)) = items.get(j + 2) {
                    value = Some(lit.to_string().trim_matches('"').to_string());
                    j += 2;
                }
            }
        }
        match (key.as_str(), value) {
            ("try_from", Some(v)) => attrs.try_from = Some(v),
            ("into", Some(v)) => attrs.into = Some(v),
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            _ => {} // unknown keys tolerated (mirrors upstream leniency for the shapes we use)
        }
        j += 1;
    }
}

/// Fields of a named-field body `{ a: T, b: U, ... }`, with their
/// `#[serde(default)]` markers.
fn parse_named_fields(body: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Scan field attributes and doc comments for `#[serde(default)]`.
        let mut default = false;
        while matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                default |= attr_is_serde_default(g);
            }
            i += 2;
        }
        // Skip visibility.
        if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match &toks[i] {
            TokenTree::Ident(id) => names.push(Field {
                name: id.to_string(),
                default,
            }),
            other => panic!("serde derive (vendored): expected field name, got `{other}`"),
        }
        i += 2; // name + ':'
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Variant names and shapes of an enum body.
fn parse_variants(body: &Group) -> Vec<(String, VariantShape)> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive (vendored): expected variant name, got `{other}`"),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let n = count_top_level_fields(g);
                if n != 1 {
                    panic!(
                        "serde derive (vendored): tuple variant `{name}` must have exactly one field (has {n})"
                    );
                }
                VariantShape::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g))
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

/// Whether an outer-attribute group is exactly `serde(... default ...)`.
fn attr_is_serde_default(g: &Group) -> bool {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.get(1) {
        Some(TokenTree::Group(inner)) if inner.delimiter() == Delimiter::Parenthesis => inner
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Number of comma-separated entries at angle-depth 0 in a paren group.
fn count_top_level_fields(g: &Group) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for t in g.stream() {
        saw_any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn snake_case(s: &str) -> String {
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ---- code generation ------------------------------------------------------

fn string_from(lit: &str) -> String {
    format!("::std::string::String::from(\"{lit}\")")
}

/// `match`-expression deserializing field `field` from `__obj`. Fields
/// marked `#[serde(default)]` fall back to `Default::default()` when the
/// key is absent (schema-evolution escape hatch for old payloads).
fn de_field_expr(field: &Field, container: &str) -> String {
    let name = &field.name;
    let missing = if field.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!("::serde::Deserialize::__missing_field(\"{name}\", \"{container}\")?")
    };
    format!(
        "match ::serde::__field(__obj, \"{name}\") {{ \
           ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
           ::std::option::Option::None => {missing}, \
         }}"
    )
}

fn ser_via_into(name: &str, proxy: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ \
             let __proxy: {proxy} = ::std::convert::Into::into(::std::clone::Clone::clone(self)); \
             ::serde::Serialize::to_value(&__proxy) \
           }} \
         }}"
    )
}

fn de_via_try_from(name: &str, proxy: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
             let __proxy: {proxy} = ::serde::Deserialize::from_value(__v)?; \
             ::std::convert::TryFrom::try_from(__proxy) \
               .map_err(|__e| ::serde::Error::custom(::std::format!(\"{{}}\", __e))) \
           }} \
         }}"
    )
}

fn ser_struct(name: &str, fields: &[Field]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({}, ::serde::Serialize::to_value(&self.{}))",
                string_from(&f.name),
                f.name
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ \
             ::serde::Value::Object(::std::vec![{}]) \
           }} \
         }}",
        entries.join(", ")
    )
}

fn de_struct(name: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{}: {}", f.name, de_field_expr(f, name)))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
             let __obj = ::serde::__as_object(__v, \"{name}\")?; \
             ::std::result::Result::Ok({name} {{ {} }}) \
           }} \
         }}",
        inits.join(", ")
    )
}

fn ser_enum(name: &str, variants: &[(String, VariantShape)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, shape)| match shape {
            VariantShape::Unit => {
                format!("{name}::{v} => ::serde::Value::Str({}),", string_from(v))
            }
            VariantShape::Newtype => format!(
                "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![({}, ::serde::Serialize::to_value(__f0))]),",
                string_from(v)
            ),
            VariantShape::Struct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "({}, ::serde::Serialize::to_value({}))",
                            string_from(&f.name),
                            f.name
                        )
                    })
                    .collect();
                let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                format!(
                    "{name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![({}, ::serde::Value::Object(::std::vec![{}]))]),",
                    bindings.join(", "),
                    string_from(v),
                    entries.join(", ")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ \
             match self {{ {} }} \
           }} \
         }}",
        arms.join(" ")
    )
}

fn de_enum_external(name: &str, variants: &[(String, VariantShape)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, s)| matches!(s, VariantShape::Unit))
        .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, shape)| match shape {
            VariantShape::Unit => None,
            VariantShape::Newtype => Some(format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(_inner)?)),"
            )),
            VariantShape::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{}: {}", f.name, de_field_expr(f, &format!("{name}::{v}"))))
                    .collect();
                Some(format!(
                    "\"{v}\" => {{ let __obj = ::serde::__as_object(_inner, \"{name}::{v}\")?; \
                       ::std::result::Result::Ok({name}::{v} {{ {} }}) }}",
                    inits.join(", ")
                ))
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
             match __v {{ \
               ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {} \
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown unit variant `{{}}` for {name}\", __other))), \
               }}, \
               ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                 let _inner = &__pairs[0].1; \
                 match __pairs[0].0.as_str() {{ \
                   {} \
                   __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{}}` for {name}\", __other))), \
                 }} \
               }} \
               _ => ::std::result::Result::Err(::serde::Error::custom(\"expected a {name} variant\")), \
             }} \
           }} \
         }}",
        unit_arms.join(" "),
        payload_arms.join(" ")
    )
}

fn de_enum_tagged(
    name: &str,
    variants: &[(String, VariantShape)],
    tag: &str,
    rename_all: Option<&str>,
) -> String {
    let rename = |v: &str| -> String {
        match rename_all {
            Some("snake_case") => snake_case(v),
            Some(other) => panic!("serde derive (vendored): rename_all = \"{other}\" unsupported"),
            None => v.to_string(),
        }
    };
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, shape)| {
            let wire = rename(v);
            match shape {
                VariantShape::Unit => {
                    format!("\"{wire}\" => ::std::result::Result::Ok({name}::{v}),")
                }
                VariantShape::Newtype => panic!(
                    "serde derive (vendored): newtype variant `{v}` unsupported with tag attribute"
                ),
                VariantShape::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{}: {}", f.name, de_field_expr(f, &format!("{name}::{v}"))))
                        .collect();
                    format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                        inits.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
             let __obj = ::serde::__as_object(__v, \"{name}\")?; \
             let __tag = match ::serde::__field(__obj, \"{tag}\") {{ \
               ::std::option::Option::Some(::serde::Value::Str(__s)) => __s.as_str(), \
               _ => return ::std::result::Result::Err(::serde::Error::custom(\"missing or non-string tag `{tag}` in {name}\")), \
             }}; \
             match __tag {{ \
               {} \
               __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown {name} type `{{}}`\", __other))), \
             }} \
           }} \
         }}",
        arms.join(" ")
    )
}
