//! Offline vendored subset of `serde_json`: a complete JSON parser and
//! printer over the vendored `serde` value tree.
//!
//! Formatting matches `serde_json` where the workspace's tests depend on
//! it: floats print with a round-trippable shortest representation keeping
//! a `.0` for integral values (`1.0`, not `1`), pretty-printing indents by
//! two spaces, and non-finite floats serialize as `null`.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Error parsing or printing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self { msg: e.to_string() }
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
    Err(Error { msg: msg.into() })
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Lowers `value` to the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(T::from_value(&v)?)
}

/// Lifts a typed value out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

// ---- printer --------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Debug formatting for f64 is the shortest round-trippable
        // decimal and always keeps a fractional part ("1.0"), matching
        // serde_json's output for whole-number floats.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, x);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, x);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_value_pretty(out: &mut String, v: &Value, level: usize) {
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_value_pretty(out, x, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, x, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    err(format!("invalid token at offset {}", self.pos))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    err(format!("invalid token at offset {}", self.pos))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    err(format!("invalid token at offset {}", self.pos))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => err(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            )),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error {
                            msg: "invalid UTF-8 in string".into(),
                        })?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(Error {
                        msg: "unterminated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !(self.eat_keyword("\\u")) {
                                    return err("unpaired surrogate in string");
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return err("invalid low surrogate");
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or(Error {
                                msg: "invalid unicode escape".into(),
                            })?);
                        }
                        _ => return err("invalid escape sequence"),
                    }
                }
                Some(_) => return err("control character in string"),
                None => return err("unterminated string"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|_| Error {
            msg: "invalid \\u escape".into(),
        })?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error {
            msg: "invalid \\u escape".into(),
        })
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => err(format!("invalid number `{text}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let v: Value = from_str("42").unwrap();
        assert_eq!(v, Value::UInt(42));
        let v: Value = from_str("-17").unwrap();
        assert_eq!(v, Value::Int(-17));
        let v: Value = from_str("1.5e2").unwrap();
        assert_eq!(v, Value::Float(150.0));
        let v: Value = from_str("\"a\\nb\"").unwrap();
        assert_eq!(v, Value::Str("a\nb".into()));
    }

    #[test]
    fn floats_keep_a_fractional_part() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        let back: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(back, 0.1);
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"configs":[{"values":[{"Index":0}]}],"objectives":[1.0,2.0]}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".into()));
    }
}
